"""The identity database: equivalence classes of circuits, mined and kept.

Two reset-free circuits on the same wires are *equivalent* when their
exhaustive actions — their permutations of all ``2**n`` patterns — are
equal.  This module stores such equivalence classes as rewrite
material: the peephole optimiser looks a window's action up here and
splices in the cheapest known equivalent.  Classes whose action is the
identity are the classic "circuit identities" of the synthesis
literature (templates): any occurrence may be deleted outright.

The database is *content-keyed* with the same hash scheme as the
compile cache: a member's identity is the SHA-256 digest of its public
:meth:`~repro.core.circuit.Circuit.content_key` (wire count + exact op
sequence — there is deliberately no second hashing scheme), so adding
the same circuit twice, or the same circuit rebuilt from scratch, is a
no-op.  Classes are keyed by their action's mapping tuple.

Population comes from the searcher: :meth:`IdentityDatabase.mine`
walks :func:`~repro.synth.search.enumerate_canonical` over a placed
gate library and files every canonical circuit under its exhaustively
computed action.  Every circuit entering the database — mined, added
by hand, or loaded back from disk — has its action recomputed by
exhaustion and checked against its class, so a corrupted or
hand-edited JSON file cannot smuggle in a wrong rewrite.

Persistence is JSON under ``benchmarks/results/`` (the same home as
the experiment tables): gates are stored by library name when the name
resolves to the standard library, and with their full permutation
table otherwise, so databases survive library renames loudly rather
than silently.
"""

from __future__ import annotations

import json
from hashlib import sha256
from pathlib import Path

from repro.core import library
from repro.core.circuit import Circuit
from repro.core.gate import Gate
from repro.core.permutation import Permutation
from repro.core.truth_table import circuit_permutation
from repro.errors import SynthesisError
from repro.synth.search import build_circuit, enumerate_canonical, placed_library
from repro.synth.target import DEFAULT_COST_MODEL, CostModel

#: Repository root (this file lives at src/repro/synth/).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Default persistence home — next to the experiment result tables.
DEFAULT_DATABASE_DIR = REPO_ROOT / "benchmarks" / "results"


def content_digest(circuit: Circuit) -> str:
    """Hex SHA-256 of the circuit's :meth:`Circuit.content_key`.

    The digest is a pure function of the content key — the compile
    cache's notion of identity, pushed through a hash so it can key
    JSON objects.  The key's operations are expanded field by field
    (kind, wires, reset value, and the gate's name/arity/full
    permutation table) rather than via ``repr``: ``Gate.__repr__``
    elides the table, and a digest that ignored tables would collide
    content-distinct circuits whose gates merely share a name.
    """
    n_wires, ops = circuit.content_key()
    material = repr(
        (
            n_wires,
            tuple(
                (
                    op.kind.value,
                    op.wires,
                    op.reset_value,
                    None
                    if op.gate is None
                    else (op.gate.name, op.gate.arity, op.gate.table),
                )
                for op in ops
            ),
        )
    )
    return sha256(material.encode()).hexdigest()


# ----------------------------------------------------------------------
# Circuit (de)serialisation
# ----------------------------------------------------------------------


def circuit_to_json(circuit: Circuit) -> dict:
    """A JSON-serialisable description of a circuit's content."""
    ops = []
    for op in circuit:
        if op.is_reset:
            ops.append({"reset": op.reset_value, "wires": list(op.wires)})
            continue
        assert op.gate is not None
        entry: dict = {"gate": op.gate.name, "wires": list(op.wires)}
        registered = library.REGISTRY.get(op.gate.name)
        if registered is None or not registered.same_action(op.gate):
            entry["table"] = list(op.gate.table)
        ops.append(entry)
    return {"n_wires": circuit.n_wires, "name": circuit.name, "ops": ops}


def circuit_from_json(data: dict) -> Circuit:
    """Rebuild a circuit serialised by :func:`circuit_to_json`."""
    try:
        circuit = Circuit(int(data["n_wires"]), name=str(data.get("name", "")))
        for entry in data["ops"]:
            wires = tuple(int(w) for w in entry["wires"])
            if "reset" in entry:
                circuit.append_reset(*wires, value=int(entry["reset"]))
                continue
            name = entry["gate"]
            if "table" in entry:
                gate = Gate(
                    name=name,
                    arity=len(wires),
                    table=tuple(int(image) for image in entry["table"]),
                )
            else:
                gate = library.get(name)
            circuit.append_gate(gate, *wires)
    except (KeyError, TypeError, ValueError) as exc:
        raise SynthesisError(f"malformed circuit record: {exc}") from exc
    return circuit


# ----------------------------------------------------------------------
# The database
# ----------------------------------------------------------------------


class IdentityDatabase:
    """Equivalence classes of reset-free circuits on ``n_wires`` wires.

    ``classes`` maps an action's mapping tuple to the member circuits,
    each keyed by content digest.  All mutation paths verify membership
    by exhaustion before filing anything.
    """

    #: On-disk format version.
    VERSION = 1

    def __init__(self, n_wires: int):
        if n_wires < 1:
            raise SynthesisError(f"database needs >= 1 wire, got {n_wires}")
        self.n_wires = n_wires
        self.classes: dict[tuple[int, ...], dict[str, Circuit]] = {}
        #: Free-form provenance (e.g. the mining parameters) persisted
        #: with the database; :meth:`load_or_mine` uses it to detect a
        #: stale file after the parameters change in code.
        self.metadata: dict = {}

    # -- population ----------------------------------------------------

    def add(self, circuit: Circuit) -> bool:
        """File ``circuit`` under its exhaustively computed action.

        Returns True when the circuit is new, False when its content
        digest was already present.  Rejects circuits with resets (no
        permutation action) or on the wrong wire count.
        """
        if circuit.n_wires != self.n_wires:
            raise SynthesisError(
                f"database holds {self.n_wires}-wire circuits, got "
                f"{circuit.n_wires} wires"
            )
        mapping = circuit_permutation(circuit).mapping  # raises on resets
        members = self.classes.setdefault(mapping, {})
        digest = content_digest(circuit)
        if digest in members:
            return False
        members[digest] = circuit
        return True

    def mine(
        self,
        gate_library: tuple[Gate, ...],
        max_gates: int,
        keep: int = 4,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> int:
        """Populate from the searcher's canonical enumeration.

        Walks every canonical placement sequence of up to ``max_gates``
        gates, keeping at most ``keep`` cheapest members per class (a
        rewrite needs the cheapest member plus a little diversity for
        inspection, not the whole equivalence class).  Returns the net
        number of circuits the run added (insertions minus evictions).
        """
        if keep < 1:
            raise SynthesisError(f"keep must be >= 1, got {keep}")
        ops = placed_library(tuple(gate_library), self.n_wires)
        added = 0
        for sequence, mapping in enumerate_canonical(ops, max_gates):
            members = self.classes.setdefault(mapping, {})
            # A reset-free candidate of k gates costs at least
            # k * gate_location_weight (+ one depth layer when k > 0);
            # when the class is full of members at or below that lower
            # bound, building and scoring the candidate cannot improve
            # the kept set.  The bound — not the raw gate count — keeps
            # the skip sound for cost models with sub-unit weights.
            lower_bound = cost_model.gate_location_weight * len(sequence)
            if sequence:
                lower_bound += cost_model.depth_weight
            if len(members) >= keep and all(
                cost_model.cost(member) <= lower_bound
                for member in members.values()
            ):
                continue
            circuit = build_circuit(ops, sequence, self.n_wires)
            # enumerate_canonical's mapping is exact, but every entry
            # path re-verifies by exhaustion — one contract, no
            # trusted shortcuts.
            if circuit_permutation(circuit).mapping != mapping:
                raise SynthesisError(
                    "searcher action disagrees with exhaustive evaluation "
                    f"for {sequence!r}"
                )  # pragma: no cover - would indicate a searcher bug
            digest = content_digest(circuit)
            if digest in members:
                continue  # pragma: no cover - canonical sequences are unique
            members[digest] = circuit
            added += 1
            if len(members) > keep:
                worst = max(
                    members, key=lambda d: (cost_model.cost(members[d]), d)
                )
                del members[worst]
                added -= 1
        return added

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.classes)

    @property
    def n_circuits(self) -> int:
        """Total member circuits across all classes."""
        return sum(len(members) for members in self.classes.values())

    def best(
        self,
        action: Permutation | tuple[int, ...],
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> Circuit | None:
        """The cheapest known circuit with ``action``, or ``None``.

        The identity action always answers with the empty circuit even
        on a freshly constructed database — deleting a no-op window
        needs no mining.
        """
        mapping = action.mapping if isinstance(action, Permutation) else tuple(action)
        if len(mapping) != 1 << self.n_wires:
            raise SynthesisError(
                f"action on {len(mapping)} patterns does not fit a "
                f"{self.n_wires}-wire database"
            )
        candidates = list(self.classes.get(mapping, {}).values())
        if mapping == tuple(range(len(mapping))):
            candidates.append(Circuit(self.n_wires))
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda c: (cost_model.cost(c), content_digest(c)),
        )

    def identities(self) -> tuple[Circuit, ...]:
        """All mined circuits whose action is the identity."""
        mapping = tuple(range(1 << self.n_wires))
        return tuple(self.classes.get(mapping, {}).values())

    # -- persistence ---------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the database as JSON; returns the path written."""
        path = Path(path)
        payload = {
            "version": self.VERSION,
            "n_wires": self.n_wires,
            "metadata": self.metadata,
            "classes": [
                {
                    "mapping": list(mapping),
                    "circuits": [
                        circuit_to_json(members[digest])
                        for digest in sorted(members)
                    ],
                }
                for mapping, members in sorted(self.classes.items())
            ],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        # Compact arrays (mappings and gate tables dominate the bytes);
        # one top-level pass of readability comes from sorted classes.
        path.write_text(json.dumps(payload, separators=(",", ":")) + "\n")
        return path

    @classmethod
    def load_or_mine(
        cls,
        path: str | Path,
        n_wires: int,
        gate_library: tuple[Gate, ...],
        max_gates: int,
        keep: int = 4,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> "IdentityDatabase":
        """The persisted database at ``path``, mining it on first use.

        An existing file is loaded (and therefore re-verified member by
        member — a hand-edited database fails loudly) when its recorded
        mining parameters match the requested ones; a missing file, or
        one mined under *different* parameters (library, depth, keep,
        cost weights), is re-mined and overwritten, so editing the
        parameters in code can never silently keep serving the old
        rewrite rules.  A width mismatch raises: that is a caller
        confusion, not staleness.
        """
        path = Path(path)
        provenance = {
            "mined": {
                "gates": sorted(gate.name for gate in gate_library),
                "max_gates": max_gates,
                "keep": keep,
                "cost": [
                    cost_model.gate_location_weight,
                    cost_model.reset_location_weight,
                    cost_model.depth_weight,
                ],
            }
        }
        if path.exists():
            database = cls.load(path)
            if database.n_wires != n_wires:
                raise SynthesisError(
                    f"persisted database {path} is on {database.n_wires} "
                    f"wires, expected {n_wires}"
                )
            if database.metadata == provenance:
                return database
        database = cls(n_wires)
        database.metadata = provenance
        database.mine(gate_library, max_gates, keep=keep, cost_model=cost_model)
        database.save(path)
        return database

    @classmethod
    def load(cls, path: str | Path) -> "IdentityDatabase":
        """Read a database back, re-verifying every member by exhaustion.

        A member whose recomputed action differs from its recorded
        class raises :class:`~repro.errors.SynthesisError` — a rewrite
        database that cannot be trusted is worse than none.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SynthesisError(f"cannot read identity database {path}: {exc}") from exc
        if payload.get("version") != cls.VERSION:
            raise SynthesisError(
                f"identity database {path} has version "
                f"{payload.get('version')!r}, expected {cls.VERSION}"
            )
        database = cls(int(payload["n_wires"]))
        database.metadata = dict(payload.get("metadata", {}))
        for record in payload.get("classes", []):
            recorded = tuple(int(image) for image in record["mapping"])
            for circuit_record in record.get("circuits", []):
                circuit = circuit_from_json(circuit_record)
                if (
                    circuit.n_wires != database.n_wires
                    or circuit_permutation(circuit).mapping != recorded
                ):
                    raise SynthesisError(
                        f"identity database {path} is corrupt: a recorded "
                        "member does not implement its class action"
                    )
                # File directly under the just-verified action; going
                # through add() would recompute the exhaustive
                # permutation a second time per member.
                database.classes.setdefault(recorded, {}).setdefault(
                    content_digest(circuit), circuit
                )
        return database
