"""Symbolic verification of backend *prepared programs*.

The compiled-program verifier (:mod:`repro.verify.program`) proves the
slot schedule equivalent to the circuit; this module closes the last
gap — the per-backend executables built *from* that schedule.  Each
registered prepared-program type has a verifier that symbolically
interprets **the artifact that will actually execute** and compares
every slot's transfer function against the circuit's own ops:

* :class:`~repro.backends.numpy_backend.NumpyProgram` executes
  ``prepared.compiled.slots`` directly, so its verifier symbolically
  runs those slots (through the engines' stacked semantics);
* :class:`~repro.backends.fused.FusedProgram` is verified kernel by
  kernel from each :class:`~repro.backends.fused._KernelSpec`'s
  ``kind``/``meta``: reset kernels assign constants, generic kernels
  replay the stacked apply, **codegen kernels are AST-interpreted from
  their generated source** (resolving the real ``_idx*`` index arrays
  out of the kernel's globals, and modelling view aliasing exactly:
  sliced gathers read through to the planes at use time, fancy gathers
  are owned copies), and tape kernels are interpreted from the actual
  ``(wires, tape, out_pos, out_reg)`` arrays the JIT loop will run.

The dispatch table :data:`PROGRAM_VERIFIERS` is public so a
conformance-style guard can assert every registered backend's prepared
type is covered — a backend added without a verifier fails the guard,
not silently escapes verification (``RV400``).
"""

from __future__ import annotations

import ast

from repro.backends.fused import (
    _OP_AND,
    _OP_COPY,
    _OP_NOT,
    _OP_XOR,
    FusedProgram,
)
from repro.backends.numpy_backend import NumpyProgram
from repro.core.anf import constant, p_and, p_not, p_xor, variable
from repro.core.compiled import compile_circuit
from repro.errors import VerificationError
from repro.verify.diagnostics import DiagnosticReport
from repro.verify.ir import circuit_label
from repro.verify.program import (
    apply_group_symbolic,
    apply_ops_symbolic,
    apply_slot_symbolic,
    slot_op_partition,
)

__all__ = [
    "PROGRAM_VERIFIERS",
    "verifier_for",
    "verify_prepared",
]


# ----------------------------------------------------------------------
# Kernel interpreters (fused backend)
# ----------------------------------------------------------------------


def _interpret_reset_kernel(polys: list, meta) -> None:
    wires, value = meta
    for wire in wires:
        polys[int(wire)] = constant(value)


def _interpret_tape_kernel(polys: list, meta) -> None:
    wires, tape, out_pos, out_reg = meta
    k, arity = wires.shape
    for row in range(k):
        registers: dict[int, frozenset] = {
            i: polys[int(wires[row, i])] for i in range(arity)
        }

        def load(register: int) -> frozenset:
            if register not in registers:
                raise VerificationError(
                    f"tape reads register {register} before any write"
                )
            return registers[register]

        for step in range(tape.shape[0]):
            op, a, b, d = (int(v) for v in tape[step])
            if op == _OP_AND:
                registers[d] = p_and(load(a), load(b))
            elif op == _OP_XOR:
                registers[d] = p_xor(load(a), load(b))
            elif op == _OP_NOT:
                registers[d] = p_not(load(a))
            elif op == _OP_COPY:
                registers[d] = load(a)
            else:
                raise VerificationError(f"unknown tape opcode {op}")
        for o in range(out_pos.shape[0]):
            polys[int(wires[row, int(out_pos[o])])] = load(int(out_reg[o]))


class _CodegenInterpreter:
    """AST interpreter for one generated NumPy kernel over polynomials.

    Names bind to either a *view* (a list of plane indices — reads go
    through to the symbolic planes at use time, writes scatter back,
    exactly like a NumPy basic-slice view) or an *owned* vector of
    polynomials (fancy-indexed gathers and scratch buffers).  Every
    statement shape outside the generator's repertoire raises
    :class:`~repro.errors.VerificationError` — an unmodellable kernel
    must fail verification, never be skipped.
    """

    def __init__(self, polys: list, spec):
        self.polys = polys
        self.spec = spec
        self.globals = spec.fn.__globals__
        self.bindings: dict[str, tuple[str, list]] = {}

    def run(self) -> None:
        tree = ast.parse(self.spec.source)
        if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
            raise VerificationError("kernel source is not a single function")
        function = tree.body[0]
        parameters = [argument.arg for argument in function.args.args]
        if not parameters or parameters[0] != "planes":
            raise VerificationError(
                f"kernel parameters {parameters} do not start with 'planes'"
            )
        for name in parameters[1:]:
            self.bindings[name] = ("owned", [None] * self.spec.k)
        for statement in function.body:
            self._execute(statement)

    # -- statement forms ----------------------------------------------

    def _execute(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
            if isinstance(target, ast.Name):
                self._assign_name(target.id, statement.value)
                return
            if isinstance(target, ast.Subscript):
                self._assign_scatter(target, statement.value)
                return
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Call
        ):
            self._call(statement.value)
            return
        raise VerificationError(
            f"unsupported kernel statement: {ast.dump(statement)[:120]}"
        )

    def _assign_name(self, name: str, value: ast.expr) -> None:
        # x{i} = planes[<slice>]  |  x{i} = planes[_idx{i}]
        if not (
            isinstance(value, ast.Subscript)
            and isinstance(value.value, ast.Name)
            and value.value.id == "planes"
        ):
            raise VerificationError(
                f"unsupported gather into {name}: {ast.dump(value)[:120]}"
            )
        index = value.slice
        if isinstance(index, ast.Slice):
            self.bindings[name] = ("view", self._slice_indices(index))
            return
        if isinstance(index, ast.Name):
            indices = self._index_array(index.id)
            self.bindings[name] = (
                "owned",
                [self.polys[i] for i in indices],
            )
            return
        raise VerificationError(
            f"unsupported planes subscript: {ast.dump(index)[:120]}"
        )

    def _assign_scatter(self, target: ast.Subscript, value: ast.expr) -> None:
        # planes[_idx{i}] = <name>
        if not (
            isinstance(target.value, ast.Name)
            and target.value.id == "planes"
            and isinstance(target.slice, ast.Name)
            and isinstance(value, ast.Name)
        ):
            raise VerificationError(
                f"unsupported scatter: {ast.dump(target)[:120]}"
            )
        indices = self._index_array(target.slice.id)
        values = self._read(value.id)
        if len(values) != len(indices):
            raise VerificationError(
                f"scatter of {len(values)} rows into {len(indices)} planes"
            )
        for index, poly in zip(indices, values):
            self.polys[index] = poly

    def _call(self, call: ast.Call) -> None:
        if not (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "np"
        ):
            raise VerificationError(
                f"unsupported kernel call: {ast.dump(call)[:120]}"
            )
        operation = call.func.attr
        if operation == "copyto":
            destination, source = (self._name(a) for a in call.args)
            self._write(destination, self._read(source))
            return
        out = None
        for keyword in call.keywords:
            if keyword.arg == "out" and isinstance(keyword.value, ast.Name):
                out = keyword.value.id
        if out is None:
            raise VerificationError(f"kernel call without out=: {operation}")
        operands = [self._read(self._name(a)) for a in call.args]
        if operation == "bitwise_and" and len(operands) == 2:
            result = [p_and(a, b) for a, b in zip(*operands)]
        elif operation == "bitwise_xor" and len(operands) == 2:
            result = [p_xor(a, b) for a, b in zip(*operands)]
        elif operation == "bitwise_not" and len(operands) == 1:
            result = [p_not(a) for a in operands[0]]
        else:
            raise VerificationError(
                f"unsupported kernel operation np.{operation} with "
                f"{len(operands)} operands"
            )
        self._write(out, result)

    # -- name/value plumbing ------------------------------------------

    @staticmethod
    def _name(node: ast.expr) -> str:
        if not isinstance(node, ast.Name):
            raise VerificationError(
                f"expected a name operand, found {ast.dump(node)[:80]}"
            )
        return node.id

    def _slice_indices(self, node: ast.Slice) -> list[int]:
        def literal(part, default):
            if part is None:
                return default
            if isinstance(part, ast.Constant) and isinstance(part.value, int):
                return part.value
            raise VerificationError(
                f"non-literal slice bound: {ast.dump(part)[:80]}"
            )

        start = literal(node.lower, 0)
        stop = literal(node.upper, None)
        step = literal(node.step, 1)
        if stop is None or step <= 0:
            raise VerificationError(f"unsupported slice {start}:{stop}:{step}")
        return list(range(start, stop, step))

    def _index_array(self, name: str) -> list[int]:
        array = self.globals.get(name)
        if array is None:
            raise VerificationError(
                f"kernel references unknown index array {name!r}"
            )
        return [int(value) for value in array]

    def _read(self, name: str) -> list:
        binding = self.bindings.get(name)
        if binding is None:
            raise VerificationError(f"kernel reads unbound name {name!r}")
        kind, payload = binding
        if kind == "view":
            return [self.polys[index] for index in payload]
        if any(value is None for value in payload):
            raise VerificationError(
                f"kernel reads scratch {name!r} before writing it"
            )
        return list(payload)

    def _write(self, name: str, values: list) -> None:
        binding = self.bindings.get(name)
        if binding is None:
            raise VerificationError(f"kernel writes unbound name {name!r}")
        kind, payload = binding
        if kind == "view":
            if len(values) != len(payload):
                raise VerificationError(
                    f"write of {len(values)} rows into a {len(payload)}-row "
                    f"view {name!r}"
                )
            for index, poly in zip(payload, values):
                self.polys[index] = poly
        else:
            self.bindings[name] = ("owned", list(values))


def _interpret_fused_slot(polys: list, specs) -> None:
    for spec in specs:
        if spec.kind == "reset":
            _interpret_reset_kernel(polys, spec.meta)
        elif spec.kind == "generic":
            apply_group_symbolic(polys, spec.meta)
        elif spec.kind == "codegen":
            _CodegenInterpreter(polys, spec).run()
        elif spec.kind == "tape":
            _interpret_tape_kernel(polys, spec.meta)
        else:
            raise VerificationError(f"unknown kernel kind {spec.kind!r}")


# ----------------------------------------------------------------------
# Per-type verifiers and the dispatch table
# ----------------------------------------------------------------------


def _slot_reference(circuit, compiled, report, label) -> list | None:
    """Per-slot circuit op spans, or ``None`` when they cannot align."""
    spans = slot_op_partition(compiled)
    total = spans[-1][1] if spans else 0
    if total != len(circuit.ops):
        report.error(
            "RV200",
            label,
            f"slots cover {total} ops, circuit has {len(circuit.ops)} — "
            f"prepared program cannot be aligned for verification",
        )
        return None
    return [circuit.ops[start:stop] for start, stop in spans]


def _compare_slot(polys, ops, n_wires, where, report) -> None:
    reference = [variable(w) for w in range(n_wires)]
    apply_ops_symbolic(reference, ops)
    mismatched = [w for w in range(n_wires) if polys[w] != reference[w]]
    if mismatched:
        report.error(
            "RV401",
            where,
            f"prepared slot computes a different function on wires "
            f"{mismatched}",
        )


def _verify_numpy_program(prepared, circuit, label, report) -> None:
    compiled = prepared.compiled
    spans = _slot_reference(circuit, compiled, report, label)
    if spans is None:
        return
    for index, (slot, ops) in enumerate(zip(compiled.slots, spans)):
        where = f"{label} numpy slot {index}"
        polys = [variable(w) for w in range(compiled.n_wires)]
        try:
            apply_slot_symbolic(polys, slot)
        except VerificationError as exc:
            report.error("RV402", where, str(exc))
            continue
        _compare_slot(polys, ops, compiled.n_wires, where, report)


def _verify_fused_program(prepared, circuit, label, report) -> None:
    compiled = prepared.compiled
    spans = _slot_reference(circuit, compiled, report, label)
    if spans is None:
        return
    if len(prepared._specs) != len(compiled.slots):
        report.error(
            "RV401",
            label,
            f"fused program has {len(prepared._specs)} slot chains for "
            f"{len(compiled.slots)} slots",
        )
        return
    for index, (specs, ops) in enumerate(zip(prepared._specs, spans)):
        where = f"{label} fused slot {index}"
        polys = [variable(w) for w in range(compiled.n_wires)]
        try:
            _interpret_fused_slot(polys, specs)
        except VerificationError as exc:
            report.error("RV402", where, str(exc))
            continue
        _compare_slot(polys, ops, compiled.n_wires, where, report)


#: Prepared-program type -> verifier.  Public so the conformance-style
#: guard in the tests can assert every registered backend's prepared
#: type is covered.
PROGRAM_VERIFIERS = {
    NumpyProgram: _verify_numpy_program,
    FusedProgram: _verify_fused_program,
}


def verifier_for(prepared):
    """The registered verifier for a prepared program, or ``None``.

    Exact-type lookup first, then subclass match — a backend subclassing
    :class:`FusedProgram` without changing the artifact shape inherits
    its verifier.
    """
    verifier = PROGRAM_VERIFIERS.get(type(prepared))
    if verifier is not None:
        return verifier
    for registered, candidate in PROGRAM_VERIFIERS.items():
        if isinstance(prepared, registered):
            return candidate
    return None


def verify_prepared(
    circuit,
    backend,
    compiled=None,
    *,
    report: DiagnosticReport | None = None,
) -> DiagnosticReport:
    """Prove one backend's prepared program equivalent to the circuit.

    Prepares ``compiled`` (default: the production compile of
    ``circuit``) through ``backend`` and dispatches on the prepared
    type via :data:`PROGRAM_VERIFIERS`; an uncovered type is an
    ``RV400`` error — unverifiable is a failure, not a pass.
    """
    if report is None:
        report = DiagnosticReport()
    label = f"{circuit_label(circuit)} [{backend.name}]"
    if compiled is None:
        compiled = compile_circuit(circuit)
    prepared = backend.prepare(compiled)
    verifier = verifier_for(prepared)
    if verifier is None:
        report.error(
            "RV400",
            label,
            f"prepared program type {type(prepared).__name__} has no "
            f"registered verifier",
        )
        return report
    verifier(prepared, circuit, label, report)
    return report
