"""Codebase lint passes — the ``RL###`` half of :mod:`repro.verify`.

Five AST/text passes over the repository, run through the unified
driver ``python -m tools.lint`` (which owns the CLI and the exit-code
contract):

* :mod:`~repro.verify.codelint.rng` — RNG/clock purity outside the
  noise layer, iteration-order hazards inside key functions
  (``RL100``, ``RL110``–``RL112``);
* :mod:`~repro.verify.codelint.layering` — the import-layering DAG
  with its documented deferred-import allowlist (``RL200``–``RL202``);
* :mod:`~repro.verify.codelint.errors_pass` — typed-exception
  discipline and assert hygiene (``RL300``–``RL301``);
* :mod:`~repro.verify.codelint.deprecation` — the deprecation audit
  folded in from ``tools/deprecation_audit.py`` (``RL400``);
* :mod:`~repro.verify.codelint.timing` — raw ``time.*`` calls outside
  the ``repro.obs`` clock front door (``RL500``).

All policy data (layer table, allowlists, key-function set) lives in
:mod:`~repro.verify.codelint.config`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.errors import VerificationError
from repro.verify.codelint import (
    deprecation,
    errors_pass,
    layering,
    rng,
    timing,
)
from repro.verify.diagnostics import DiagnosticReport

__all__ = [
    "PASSES",
    "SourceFile",
    "load_source_files",
    "run_codebase_lints",
]


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python source under the linted tree."""

    path: Path  #: absolute path
    relpath: str  #: posix path relative to the repo root
    text: str
    tree: ast.Module


def load_source_files(
    root: Path, subdir: str = "src/repro"
) -> list[SourceFile]:
    """Parse every ``*.py`` under ``root/subdir``, in sorted order.

    A file that does not parse raises
    :class:`~repro.errors.VerificationError` — the lint driver maps
    that to its driver-failure exit code (the tree cannot even import,
    which is not a lint finding).
    """
    base = Path(root) / subdir
    files: list[SourceFile] = []
    for path in sorted(base.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        text = path.read_text()
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise VerificationError(
                f"{relpath} does not parse: {exc}"
            ) from exc
        files.append(SourceFile(path, relpath, text, tree))
    return files


#: The registered passes: ``name -> (codes, runner)``.  Every runner
#: has the uniform signature ``run(root, files, report)``; the
#: deprecation pass ignores ``files`` (it scans more directories than
#: the AST passes do).
PASSES: dict[str, tuple[tuple[str, ...], object]] = {
    "rng": (("RL100", "RL110", "RL111", "RL112"), rng.run),
    "layering": (("RL200", "RL201", "RL202"), layering.run),
    "errors": (("RL300", "RL301"), errors_pass.run),
    "deprecation": (("RL400",), deprecation.run),
    "timing": (("RL500",), timing.run),
}


def run_codebase_lints(
    root: Path,
    *,
    passes: list[str] | None = None,
    report: DiagnosticReport | None = None,
) -> DiagnosticReport:
    """Run the selected lint passes (default: all) over a repo root."""
    if report is None:
        report = DiagnosticReport()
    selected = list(PASSES) if passes is None else passes
    unknown = [name for name in selected if name not in PASSES]
    if unknown:
        raise VerificationError(f"unknown lint pass(es): {unknown}")
    files = load_source_files(root)
    for name in selected:
        _codes, runner = PASSES[name]
        runner(root, files, report)
    return report
