"""The enforced-by-tooling half of this repository's conventions.

Everything here was previously prose — docstrings saying "the noise
layer owns all randomness", comments saying "deferred jobs import
keeps layering acyclic" — and is now data consumed by the lint passes
in this package.  Changing a rule means changing this file, in review,
not quietly drifting.
"""

from __future__ import annotations

#: The import-layering DAG over the top-level packages/modules of
#: ``repro``.  A module may import (at module level) only packages on a
#: strictly lower layer, or its own package; upward imports must be
#: deferred (inside a function) *and* listed in
#: :data:`DEFERRED_ALLOWLIST`.  ``repro/__init__.py`` is the root
#: re-export surface and may import anything.
LAYERS: dict[str, int] = {
    "errors": 0,
    "_version": 0,
    "obs": 1,
    "core": 2,
    "coding": 3,
    "local": 3,
    "analysis": 3,
    "backends": 4,
    "noise": 5,
    "runtime": 6,
    "baselines": 7,
    "synth": 7,
    "harness": 8,
    "jobs": 9,
    "report": 10,
    "verify": 10,
}

#: Documented deferred upward imports: ``(file, target package)``.
#: Each is a function-local import whose comment in the source explains
#: why the edge must exist (cycle-breaking, deprecation shims); the
#: lint holds this list closed — a new upward import fails ``RL201``
#: until it is argued into this allowlist in review.
DEFERRED_ALLOWLIST: frozenset[tuple[str, str]] = frozenset(
    {
        # BitplaneState.run_via_backend resolves the configured backend;
        # backends import core for the plane-store types.
        ("src/repro/core/bitplane.py", "backends"),
        # The measure_cycle_errors deprecation shim re-routes to the
        # runtime executor; runtime imports the noise engines.
        ("src/repro/noise/monte_carlo.py", "runtime"),
        # The threshold finder optionally wraps its executor in the
        # jobs-layer caching executor; jobs imports harness.stats.
        ("src/repro/harness/threshold_finder.py", "jobs"),
    }
)

#: Module prefixes whose *calls* are forbidden outside the noise layer:
#: randomness and wall-clock reads are result-affecting unless they
#: flow through the seeded noise layer.
IMPURE_CALL_PREFIXES: tuple[str, ...] = (
    "numpy.random",
    "random",
    "time",
    "datetime",
)

#: Directory prefix whose files own randomness: every RNG construction
#: and seed derivation lives here (``repro.noise.seeds`` is the only
#: place ``numpy.random`` is constructed from a bare seed).
RNG_OWNING_PREFIX = "src/repro/noise/"

#: Files outside the noise layer allowed specific impure calls, with
#: the documented reason.  Empty since the observability layer became
#: the one clock front door (``repro.report`` now times through
#: ``repro.obs.stopwatch``); the mechanism stays so a future exception
#: must still be argued into this dict in review.
RNG_ALLOWED_FILES: dict[str, str] = {}

#: Directory prefix that owns the clock: ``repro.obs`` is the only
#: place in ``src/repro`` allowed to call ``time.*`` (``RL500``), and
#: its clock reads are exempt from ``RL100`` (it still may not touch
#: ``numpy.random``/``random`` — observation never feeds the RNG).
TIMING_OWNING_PREFIX = "src/repro/obs/"

#: Functions that compute content keys, hashes, or canonical wire
#: forms.  Inside these, iteration order must be deterministic: no set
#: iteration, no unsorted ``.items()``/``.keys()``/``.values()``, no
#: ``json.dumps`` without ``sort_keys=True``.
KEY_FUNCTIONS: frozenset[str] = frozenset(
    {
        "content_key",
        "content_digest",
        "point_key",
        "_key_from_wire",
        "_shard_id",
        "compress_for_hashing",
        "canonical_json",
        "prepare_key",
    }
)

#: Builtin exceptions that must never be raised bare from ``src/repro``
#: — the typed :mod:`repro.errors` hierarchy is the public contract.
#: ``NotImplementedError`` is excluded: abstract-method bodies raise it
#: by convention.
FORBIDDEN_RAISES: frozenset[str] = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "BaseException",
        "Exception",
        "IndexError",
        "IOError",
        "KeyError",
        "LookupError",
        "OSError",
        "RuntimeError",
        "StopIteration",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

#: Deprecated entry points whose spread the deprecation pass freezes
#: (folded in from ``tools/deprecation_audit.py``).  The PR 3 API
#: redesign left the first two behind as shims over
#: :mod:`repro.runtime`; ``circuit_cache_key`` was superseded by
#: ``Circuit.content_key()`` in PR 5.
DEPRECATED_NAMES: tuple[str, ...] = (
    "estimate_failure_probability",
    "logical_error_per_cycle",
    "circuit_cache_key",
)

#: Directories the deprecation pass scans (relative to the repo root).
DEPRECATION_SCANNED: tuple[str, ...] = (
    "src",
    "examples",
    "benchmarks",
    "tests",
    "tools",
)

#: Files allowed to reference the deprecated names: the shim
#: definitions, their re-exporting ``__init__`` files, the tests
#: pinning shim behaviour, the audit entry points, and this config.
DEPRECATION_ALLOWED: frozenset[str] = frozenset(
    {
        "src/repro/noise/monte_carlo.py",
        "src/repro/noise/__init__.py",
        "src/repro/harness/threshold_finder.py",
        "src/repro/harness/__init__.py",
        "src/repro/verify/codelint/config.py",
        "tests/noise/test_monte_carlo.py",
        "tests/harness/test_threshold_finder.py",
        "tests/runtime/test_executor.py",
        "tests/test_deprecation_audit.py",
        "tests/verify/test_codelint.py",
        "tests/verify/test_lint_driver.py",
        "tools/deprecation_audit.py",
        "tools/lint.py",
    }
)
