"""Error-discipline lint: typed exceptions only on public paths.

``RL300`` — a bare builtin exception (``ValueError``, ``RuntimeError``,
...) raised from ``src/repro``.  The typed hierarchy in
:mod:`repro.errors` is the public contract — "callers can catch library
failures without also catching unrelated built-in exceptions" — and a
single bare ``ValueError`` on a public path breaks that promise.
``NotImplementedError`` is exempt (abstract-method convention), as are
re-raises (``raise`` with no expression) and anything not named after a
forbidden builtin (the :mod:`repro.errors` types themselves).

``RL301`` — ``assert`` used for validation.  Asserts vanish under
``python -O``, so they must never guard user input or invariants that
can actually fail; the one sanctioned pattern is type-narrowing
(``assert op.gate is not None``, possibly conjoined with ``and``),
which exists for the benefit of the type checker on paths the
surrounding logic already guarantees.
"""

from __future__ import annotations

import ast

from repro.verify.codelint.config import FORBIDDEN_RAISES
from repro.verify.diagnostics import DiagnosticReport

__all__ = ["run"]


def _raised_name(node: ast.Raise) -> str | None:
    """The bare name a raise targets, or ``None`` (qualified/re-raise)."""
    exc = node.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _is_narrowing_compare(test: ast.expr) -> bool:
    return (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    )


def _is_narrowing_assert(node: ast.Assert) -> bool:
    test = node.test
    if _is_narrowing_compare(test):
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return all(_is_narrowing_compare(value) for value in test.values)
    return False


def run(root, files, report: DiagnosticReport) -> None:
    """The error-discipline pass over ``files``."""
    for source in files:
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Raise):
                name = _raised_name(node)
                if name in FORBIDDEN_RAISES:
                    report.error(
                        "RL300",
                        f"{source.relpath}:{node.lineno}",
                        f"bare {name} raised — raise a typed repro.errors "
                        f"exception instead",
                    )
            elif isinstance(node, ast.Assert):
                if not _is_narrowing_assert(node):
                    report.error(
                        "RL301",
                        f"{source.relpath}:{node.lineno}",
                        "assert used for validation — only `is not None` "
                        "type-narrowing asserts are allowed in src/repro",
                    )
