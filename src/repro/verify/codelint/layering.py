"""Import-layering enforcement: the acyclic DAG, held closed by tooling.

``RL200`` — a module-level import of a package on the same or a higher
layer (see :data:`~repro.verify.codelint.config.LAYERS`): the layering
errors → core → coding/local/analysis → backends → noise → runtime →
baselines/synth → harness → jobs → report/verify only points downward.

``RL201`` — a *deferred* (function-local) upward import that is not on
the documented allowlist.  Deferred imports are the sanctioned escape
hatch for genuine cycles (the threshold finder's optional jobs-layer
caching, the deprecation shims), but each one must be argued into
:data:`~repro.verify.codelint.config.DEFERRED_ALLOWLIST` in review —
otherwise the DAG erodes one convenient import at a time.

``RL202`` — a module that does not map into the layer table at all
(a new top-level package added without declaring its layer).

Imports inside ``if TYPE_CHECKING:`` blocks are exempt: they never
execute, so they create no runtime edge (they exist precisely to break
runtime cycles for the type checker).
"""

from __future__ import annotations

import ast

from repro.verify.codelint.config import DEFERRED_ALLOWLIST, LAYERS
from repro.verify.diagnostics import DiagnosticReport

__all__ = ["module_segment", "run"]


def module_segment(relpath: str) -> str | None:
    """The layer-table key for a file, or ``None`` for the root surface.

    ``src/repro/core/compiled.py`` → ``core``;
    ``src/repro/report.py`` → ``report``;
    ``src/repro/__init__.py``/``src/repro/py.typed`` → ``None`` (the
    root re-export surface, exempt from layering).
    """
    parts = relpath.split("/")
    try:
        anchor = parts.index("repro")
    except ValueError:
        return None
    tail = parts[anchor + 1 :]
    if not tail or tail == ["__init__.py"]:
        return None
    head = tail[0]
    if head.endswith(".py"):
        head = head[: -len(".py")]
    return head


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _collect_imports(tree: ast.Module):
    """``(node, deferred)`` for every import, skipping TYPE_CHECKING."""

    def walk(nodes, deferred: bool):
        for node in nodes:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield node, deferred
            elif isinstance(node, ast.If) and _is_type_checking_test(node.test):
                # The body never runs outside the type checker; the
                # else-branch is ordinary runtime code.
                yield from walk(node.orelse, deferred)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(node.body, True)
            else:
                children = []
                for name in node._fields:
                    value = getattr(node, name, None)
                    if isinstance(value, list):
                        children.extend(
                            v for v in value if isinstance(v, ast.stmt)
                        )
                if children:
                    yield from walk(children, deferred)

    yield from walk(tree.body, False)


def _import_targets(node) -> list[str]:
    """Top-level ``repro`` segments an import statement touches."""
    targets = []
    if isinstance(node, ast.Import):
        for name in node.names:
            parts = name.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                targets.append(parts[1])
    elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        parts = node.module.split(".")
        if parts[0] == "repro":
            if len(parts) > 1:
                targets.append(parts[1])
            else:
                # ``from repro import X`` touches only the root surface.
                targets.extend(
                    name.name
                    for name in node.names
                    if name.name in LAYERS
                )
    return targets


def run(root, files, report: DiagnosticReport) -> None:
    """The layering pass over ``files``."""
    for source in files:
        if source.tree is None:
            continue
        own = module_segment(source.relpath)
        if own is None:
            continue  # the root __init__ re-export surface
        own_layer = LAYERS.get(own)
        if own_layer is None:
            report.error(
                "RL202",
                source.relpath,
                f"package {own!r} is not in the layer table — declare its "
                f"layer in repro.verify.codelint.config.LAYERS",
            )
            continue
        for node, deferred in _collect_imports(source.tree):
            for target in _import_targets(node):
                if target == own:
                    continue
                target_layer = LAYERS.get(target)
                where = f"{source.relpath}:{node.lineno}"
                if target_layer is None:
                    report.error(
                        "RL202",
                        where,
                        f"import of unknown package repro.{target}",
                    )
                    continue
                if target_layer < own_layer:
                    continue
                if not deferred:
                    report.error(
                        "RL200",
                        where,
                        f"module-level import of repro.{target} (layer "
                        f"{target_layer}) from {own} (layer {own_layer}) "
                        f"breaks the layering DAG",
                    )
                elif (source.relpath, target) not in DEFERRED_ALLOWLIST:
                    report.error(
                        "RL201",
                        where,
                        f"deferred upward import of repro.{target} from "
                        f"{own} is not on the documented allowlist",
                    )
