"""The one-clock lint: ``RL500`` keeps timing behind ``repro.obs``.

``RL100`` already bans wall-clock reads outside the noise layer as a
*purity* hazard, but it exempts the noise layer itself — and a stray
``time.perf_counter()`` inside an engine would be invisible to it.
``RL500`` is the complementary *routing* rule: anywhere in
``src/repro`` outside :data:`TIMING_OWNING_PREFIX` (the ``repro.obs``
package), any call into the ``time`` module is a finding — elapsed
time flows through ``repro.obs`` (``trace``/``stopwatch``/``clock_ns``)
so every clock read is observable, sampled, and provably kept away
from results and keys.

Calls are resolved through import aliases exactly like ``RL100``
(``from time import perf_counter`` cannot dodge the lint by losing the
module prefix).
"""

from __future__ import annotations

import ast

from repro.verify.codelint.config import TIMING_OWNING_PREFIX
from repro.verify.codelint.rng import _import_aliases, _resolve_call_path
from repro.verify.diagnostics import DiagnosticReport

__all__ = ["run"]


def run(root, files, report: DiagnosticReport) -> None:
    """The RL500 pass: raw ``time.*`` calls outside ``repro.obs``."""
    for source in files:
        if source.tree is None:
            continue
        if source.relpath.startswith(TIMING_OWNING_PREFIX):
            continue
        aliases = _import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _resolve_call_path(node.func, aliases)
            if path is None:
                continue
            if path == "time" or path.startswith("time."):
                report.error(
                    "RL500",
                    f"{source.relpath}:{node.lineno}",
                    f"call to {path}() outside repro.obs — time code "
                    f"through repro.obs (trace/stopwatch/clock_ns)",
                )
