"""The deprecation audit, folded in as a lint pass (``RL400``).

Previously a free-standing script (``tools/deprecation_audit.py``, kept
as a shim over this module): repo-internal code outside the shims and
their tests must not reference the entry points retired by the PR 3
API redesign and the PR 5 key unification.  Unlike the AST passes this
one is a plain text scan over *all* scanned directories (examples,
benchmarks, tests, tools included) — a docstring telling users to call
a dead API is as much a violation as code calling it.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.verify.codelint.config import (
    DEPRECATED_NAMES,
    DEPRECATION_ALLOWED,
    DEPRECATION_SCANNED,
)
from repro.verify.diagnostics import DiagnosticReport

__all__ = ["audit", "run"]

_PATTERN = re.compile("|".join(re.escape(name) for name in DEPRECATED_NAMES))


def audit(root: Path) -> list[str]:
    """Every disallowed ``file:line: match`` reference under ``root``.

    The exact output contract of the original
    ``tools.deprecation_audit.audit`` — the shim delegates here and the
    shim's tests pin the format.
    """
    offenses: list[str] = []
    for directory in DEPRECATION_SCANNED:
        base = Path(root) / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            relative = path.relative_to(root).as_posix()
            if relative in DEPRECATION_ALLOWED:
                continue
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                match = _PATTERN.search(line)
                if match:
                    offenses.append(f"{relative}:{number}: {match.group(0)}")
    return offenses


def run(root, files, report: DiagnosticReport) -> None:
    """The deprecation pass: one ``RL400`` per offending reference."""
    for offense in audit(Path(root)):
        location, _, name = offense.rpartition(": ")
        report.error(
            "RL400",
            location,
            f"reference to deprecated entry point {name!r} — use the "
            f"repro.runtime API / Circuit.content_key()",
        )
