"""RNG/clock purity and key-computation determinism lints.

``RL100`` — calls into ``numpy.random``/``random``/``time``/``datetime``
anywhere outside the noise layer.  Every published number in this
repository is a function of an explicit seed; a stray
``np.random.default_rng()`` or ``time.time()`` on a result path is a
reproducibility bug even when tests happen to pass.  Calls are resolved
through the module's import aliases (``import numpy as np`` makes
``np.random.default_rng(...)`` a ``numpy.random`` call), so renaming an
import cannot dodge the lint; bare attribute *references* (type
annotations, ``isinstance(x, np.random.Generator)``) are not calls and
are allowed.

``RL110``/``RL111``/``RL112`` — iteration-order hazards inside the key
functions of :data:`~repro.verify.codelint.config.KEY_FUNCTIONS`: set
iteration, unsorted ``.items()``/``.keys()``/``.values()`` loops, and
``json.dumps`` without ``sort_keys=True``.  Python dicts iterate in
insertion order, so an unsorted iteration bakes *construction history*
into bytes that are supposed to be content-determined.
"""

from __future__ import annotations

import ast

from repro.verify.codelint.config import (
    IMPURE_CALL_PREFIXES,
    KEY_FUNCTIONS,
    RNG_ALLOWED_FILES,
    RNG_OWNING_PREFIX,
    TIMING_OWNING_PREFIX,
)
from repro.verify.diagnostics import DiagnosticReport

__all__ = ["run"]


def _import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted module/attribute they stand for."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                target = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _resolve_call_path(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """The dotted path a call target resolves to, or ``None``."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _impure_prefix(path: str) -> str | None:
    for prefix in IMPURE_CALL_PREFIXES:
        if path == prefix or path.startswith(prefix + "."):
            return prefix
    return None


#: Prefixes the clock-owning ``repro.obs`` layer may call; randomness
#: stays forbidden there (observation must never feed the RNG).
_CLOCK_PREFIXES = ("time", "datetime")


def _check_purity(source, report: DiagnosticReport) -> None:
    if source.relpath.startswith(RNG_OWNING_PREFIX):
        return
    if source.relpath in RNG_ALLOWED_FILES:
        return
    owns_clock = source.relpath.startswith(TIMING_OWNING_PREFIX)
    aliases = _import_aliases(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        path = _resolve_call_path(node.func, aliases)
        if path is None:
            continue
        prefix = _impure_prefix(path)
        if prefix is None:
            continue
        if owns_clock and prefix in _CLOCK_PREFIXES:
            continue
        report.error(
            "RL100",
            f"{source.relpath}:{node.lineno}",
            f"call to {path}() outside the noise layer — route "
            f"randomness/clock reads through repro.noise",
        )


def _iteration_sites(function: ast.FunctionDef):
    """``(iter_node, lineno)`` for every for-loop and comprehension."""
    for node in ast.walk(function):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node.lineno
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for generator in node.generators:
                yield generator.iter, node.lineno


def _check_key_function(source, function: ast.FunctionDef, report) -> None:
    where = f"{source.relpath}:{function.lineno}"
    for iter_node, lineno in _iteration_sites(function):
        site = f"{source.relpath}:{lineno}"
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            report.error(
                "RL110",
                site,
                f"set iteration inside key function {function.name!r} — "
                f"set order is hash-seed dependent",
            )
        elif isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Name
        ):
            if iter_node.func.id in ("set", "frozenset"):
                report.error(
                    "RL110",
                    site,
                    f"set iteration inside key function {function.name!r}",
                )
        elif isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Attribute
        ):
            if iter_node.func.attr in ("items", "keys", "values"):
                report.error(
                    "RL111",
                    site,
                    f"unsorted .{iter_node.func.attr}() iteration inside key "
                    f"function {function.name!r} — wrap in sorted(...)",
                )
    for node in ast.walk(function):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "dumps"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "json"
        ):
            continue
        sorts = any(
            keyword.arg == "sort_keys"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in node.keywords
        )
        if not sorts:
            report.error(
                "RL112",
                f"{source.relpath}:{node.lineno}",
                f"json.dumps without sort_keys=True inside key function "
                f"{function.name!r} (declared at {where})",
            )


def run(root, files, report: DiagnosticReport) -> None:
    """The RNG-purity and key-hazard passes over ``files``."""
    for source in files:
        if source.tree is None:
            continue
        _check_purity(source, report)
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name in KEY_FUNCTIONS
            ):
                _check_key_function(source, node, report)
