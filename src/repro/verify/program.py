"""Symbolic equivalence of compiled plane programs with the circuit.

The proof obligation: a :class:`~repro.core.compiled.CompiledCircuit`
executed slot by slot must compute exactly the function of the source
circuit executed op by op — for **all** inputs, not the sampled subset
a simulation-based suite happens to draw.  The check decomposes into
three layers, each symbolic over GF(2) polynomials
(:mod:`repro.core.anf`):

1. **Schedule vs circuit** (``RV100``/``RV101``): the flat schedule
   must mirror the circuit op for op (wires, class, reset values), and
   every gate op's lowered plane program must equal the gate table's
   ANF — derived here by the *independent* Möbius inversion of
   :func:`repro.core.anf.table_anf`, never by the production lowering,
   so the lowering cannot vouch for itself.
2. **Slots vs schedule** (``RV2##``): the fused slots' ops must
   concatenate back to the schedule, every slot must be legal (one
   error class, pairwise-disjoint wires, in-bounds stacked indices,
   faithful ``op_group``/``op_row``/``class_offset``/``row_slices``
   bookkeeping, reset partitions matching the reset ops).
3. **Slot transfer functions** (``RV300``): each slot, executed by the
   engines' stacked semantics (gather every group column, evaluate the
   shared program once, scatter) over *fresh variables per wire*, must
   equal the same ops applied sequentially from the gate tables.

The fresh-variables-per-slot device is what keeps this linear: a
whole-circuit ANF composition grows exponentially on nonlinear
circuits, but a slot's transfer function is polynomial in its own
inputs only.  Equality of every slot's transfer plus the structural
reconciliation of layers 1–2 composes to whole-program equivalence,
because function composition respects equality slot by slot.
"""

from __future__ import annotations

from repro.core.anf import (
    constant,
    plane_expr_poly,
    substitute,
    table_anf,
    variable,
)
from repro.core.compiled import CompiledCircuit, compile_circuit
from repro.errors import VerificationError
from repro.verify.diagnostics import DiagnosticReport
from repro.verify.ir import circuit_label, verify_circuit

__all__ = [
    "apply_group_symbolic",
    "apply_ops_symbolic",
    "apply_slot_symbolic",
    "slot_op_partition",
    "verify_compiled",
]


# ----------------------------------------------------------------------
# Symbolic execution helpers (shared with the backend verifier)
# ----------------------------------------------------------------------


def apply_ops_symbolic(polys: list, ops) -> None:
    """Sequentially apply circuit operations to a symbolic state.

    The *reference* semantics: every gate acts through its table's ANF
    (:func:`~repro.core.anf.table_anf`), resets write constants.
    Mutates ``polys`` (one polynomial per wire) in place.
    """
    for op in ops:
        if op.is_reset:
            for wire in op.wires:
                polys[wire] = constant(op.reset_value)
            continue
        gate = op.gate
        inputs = [polys[wire] for wire in op.wires]
        outputs = [
            substitute(poly, inputs)
            for poly in table_anf(gate.table, gate.arity)
        ]
        for wire, poly in zip(op.wires, outputs):
            polys[wire] = poly


def apply_slot_symbolic(polys: list, slot) -> None:
    """Apply one fused slot to a symbolic state, the engines' way.

    Mirrors :meth:`~repro.core.bitplane.BitplaneState.apply_program_stacked`
    exactly: groups run sequentially; within a group **all** input
    columns are gathered before any output is scattered, the shared
    program is evaluated once per stacked row, and outputs scatter
    position-major.  Reset slots apply their value partitions.
    Mutates ``polys`` in place; raises
    :class:`~repro.errors.VerificationError` on uninterpretable
    programs (the caller maps that to ``RV101``/``RV402``).
    """
    if slot.is_reset:
        for value, wires in slot.resets:
            for wire in wires:
                polys[wire] = constant(value)
        return
    for group in slot.groups:
        apply_group_symbolic(polys, group)


def apply_group_symbolic(polys: list, group) -> None:
    """Apply one stacked slot group to a symbolic state, in place.

    Gather-all-then-scatter, position-major — the exact order of the
    stacked runtime apply, so aliasing behaves identically.
    """
    k, arity = group.wire_matrix.shape
    for row in range(k):
        for position in range(arity):
            wire = int(group.wire_matrix[row, position])
            if not 0 <= wire < len(polys):
                raise VerificationError(
                    f"wire_matrix[{row}, {position}] = {wire} outside the "
                    f"{len(polys)}-wire state"
                )
    gathered = [
        [polys[int(group.wire_matrix[row, position])] for row in range(k)]
        for position in range(arity)
    ]
    outputs = []
    for row in range(k):
        row_inputs = [gathered[position][row] for position in range(arity)]
        outputs.append(
            [
                plane_expr_poly(expression, row_inputs)
                for expression in group.program
            ]
        )
    for position in range(arity):
        for row in range(k):
            polys[int(group.wire_matrix[row, position])] = outputs[row][
                position
            ]


def slot_op_partition(compiled: CompiledCircuit) -> list[tuple[int, int]]:
    """``(start, stop)`` schedule indices per slot, in slot order."""
    spans = []
    cursor = 0
    for slot in compiled.slots:
        spans.append((cursor, cursor + len(slot.ops)))
        cursor += len(slot.ops)
    return spans


# ----------------------------------------------------------------------
# Layer 1: schedule vs circuit
# ----------------------------------------------------------------------


def _verify_schedule(circuit, compiled, label, report) -> bool:
    if len(compiled.schedule) != len(circuit.ops):
        report.error(
            "RV200",
            label,
            f"schedule has {len(compiled.schedule)} ops but the circuit "
            f"has {len(circuit.ops)}",
        )
        return False
    sound = True
    for index, (op, compiled_op) in enumerate(
        zip(circuit.ops, compiled.schedule)
    ):
        where = f"{label} schedule op {index}"
        if compiled_op.wires != op.wires or compiled_op.is_reset != op.is_reset:
            report.error(
                "RV200",
                where,
                f"schedule op (wires={compiled_op.wires}, "
                f"is_reset={compiled_op.is_reset}) does not mirror circuit "
                f"op (wires={op.wires}, is_reset={op.is_reset})",
            )
            sound = False
            continue
        if op.is_reset:
            if compiled_op.reset_value != op.reset_value:
                report.error(
                    "RV200",
                    where,
                    f"schedule reset value {compiled_op.reset_value} != "
                    f"circuit reset value {op.reset_value}",
                )
                sound = False
            continue
        sound &= _verify_lowered_program(op, compiled_op, where, report)
    return sound


def _verify_lowered_program(op, compiled_op, where, report) -> bool:
    gate = op.gate
    program = compiled_op.program
    if program is None or len(program) != gate.arity:
        report.error(
            "RV101",
            where,
            f"gate op carries program of length "
            f"{None if program is None else len(program)}, expected "
            f"{gate.arity}",
        )
        return False
    reference = table_anf(gate.table, gate.arity)
    inputs = [variable(position) for position in range(gate.arity)]
    sound = True
    for position, expression in enumerate(program):
        try:
            lowered = plane_expr_poly(expression, inputs)
        except VerificationError as exc:
            report.error(
                "RV101", where, f"output {position}: {exc}"
            )
            sound = False
            continue
        if lowered != reference[position]:
            report.error(
                "RV100",
                where,
                f"lowered expression for gate {gate.name!r} output "
                f"{position} disagrees with the table's ANF",
            )
            sound = False
    return sound


# ----------------------------------------------------------------------
# Layer 2: slots vs schedule (fusion legality + bookkeeping)
# ----------------------------------------------------------------------


def _verify_slot_concat(compiled, label, report) -> bool:
    flattened = tuple(op for slot in compiled.slots for op in slot.ops)
    if flattened != compiled.schedule:
        report.error(
            "RV200",
            label,
            f"slot ops concatenate to {len(flattened)} ops that do not "
            f"reconcile with the {len(compiled.schedule)}-op schedule",
        )
        return False
    return True


def _verify_slot_structure(compiled, label, report) -> bool:
    sound = True
    class_counts = {False: 0, True: 0}
    for slot_index, slot in enumerate(compiled.slots):
        where = f"{label} slot {slot_index}"
        sound &= _verify_one_slot(slot, compiled.n_wires, where, report)
        if slot.class_offset != class_counts[slot.is_reset]:
            report.error(
                "RV203",
                where,
                f"class_offset {slot.class_offset} != {class_counts[slot.is_reset]} "
                f"prior {'reset' if slot.is_reset else 'gate'} ops",
            )
            sound = False
        class_counts[slot.is_reset] += len(slot.ops)
    return sound


def _verify_one_slot(slot, n_wires, where, report) -> bool:
    sound = True
    touched: set[int] = set()
    for op_index, op in enumerate(slot.ops):
        if op.is_reset != slot.is_reset:
            report.error(
                "RV201",
                f"{where} op {op_index}",
                f"op class ({'reset' if op.is_reset else 'gate'}) differs "
                f"from slot class ({'reset' if slot.is_reset else 'gate'})",
            )
            sound = False
        overlap = touched.intersection(op.wires)
        if overlap:
            report.error(
                "RV202",
                f"{where} op {op_index}",
                f"wires {sorted(overlap)} already touched inside the slot — "
                f"fused ops must be pairwise disjoint",
            )
            sound = False
        touched.update(op.wires)

    if slot.op_group is None or slot.op_row is None:
        report.error("RV204", where, "op_group/op_row bookkeeping missing")
        return False
    if len(slot.op_group) != len(slot.ops) or len(slot.op_row) != len(slot.ops):
        report.error(
            "RV204",
            where,
            f"op_group/op_row lengths ({len(slot.op_group)}, "
            f"{len(slot.op_row)}) != {len(slot.ops)} slot ops",
        )
        return False

    assigned: set[tuple[int, int]] = set()
    for op_index, op in enumerate(slot.ops):
        group_index = int(slot.op_group[op_index])
        row_index = int(slot.op_row[op_index])
        if not 0 <= group_index < len(slot.groups):
            report.error(
                "RV204",
                f"{where} op {op_index}",
                f"op_group {group_index} outside {len(slot.groups)} groups",
            )
            sound = False
            continue
        group = slot.groups[group_index]
        k, arity = group.wire_matrix.shape
        if not 0 <= row_index < k:
            report.error(
                "RV204",
                f"{where} op {op_index}",
                f"op_row {row_index} outside the group's {k} rows",
            )
            sound = False
            continue
        if (group_index, row_index) in assigned:
            report.error(
                "RV204",
                f"{where} op {op_index}",
                f"group row ({group_index}, {row_index}) assigned twice",
            )
            sound = False
        assigned.add((group_index, row_index))
        row = tuple(int(w) for w in group.wire_matrix[row_index])
        if row != op.wires:
            report.error(
                "RV205",
                f"{where} op {op_index}",
                f"group {group_index} row {row_index} holds wires {row}, "
                f"op has wires {op.wires}",
            )
            sound = False
        if not slot.is_reset and group.program != op.program:
            report.error(
                "RV205",
                f"{where} op {op_index}",
                f"group {group_index} program differs from the op's program",
            )
            sound = False
    total_rows = sum(group.wire_matrix.shape[0] for group in slot.groups)
    if len(assigned) != total_rows:
        report.error(
            "RV204",
            where,
            f"{total_rows} group rows but only {len(assigned)} covered by ops",
        )
        sound = False

    for group_index, group in enumerate(slot.groups):
        k, arity = group.wire_matrix.shape
        for row in range(k):
            for position in range(arity):
                wire = int(group.wire_matrix[row, position])
                if not 0 <= wire < n_wires:
                    report.error(
                        "RV206",
                        f"{where} group {group_index}",
                        f"wire_matrix[{row}, {position}] = {wire} outside "
                        f"0..{n_wires - 1}",
                    )
                    sound = False
        if group.row_slices:
            if len(group.row_slices) != arity:
                report.error(
                    "RV207",
                    f"{where} group {group_index}",
                    f"{len(group.row_slices)} row_slices for arity {arity}",
                )
                sound = False
            else:
                for position, view in enumerate(group.row_slices):
                    if view is None:
                        continue
                    step = view.step if view.step is not None else 1
                    indices = list(range(view.start, view.stop, step))
                    column = [int(w) for w in group.wire_matrix[:, position]]
                    if indices != column:
                        report.error(
                            "RV207",
                            f"{where} group {group_index}",
                            f"row_slices[{position}] covers {indices}, "
                            f"column holds {column}",
                        )
                        sound = False

    if slot.is_reset:
        by_value: dict[int, list[int]] = {}
        for op in slot.ops:
            by_value.setdefault(op.reset_value, []).extend(op.wires)
        expected = tuple(
            (value, tuple(wires)) for value, wires in by_value.items()
        )
        if slot.resets != expected:
            report.error(
                "RV208",
                where,
                f"reset partition {slot.resets} does not rebuild from the "
                f"slot ops (expected {expected})",
            )
            sound = False
    return sound


# ----------------------------------------------------------------------
# Layer 3: slot transfer functions
# ----------------------------------------------------------------------


def _verify_slot_transfers(circuit, compiled, label, report) -> None:
    spans = slot_op_partition(compiled)
    for slot_index, (slot, (start, stop)) in enumerate(
        zip(compiled.slots, spans)
    ):
        where = f"{label} slot {slot_index}"
        ops = circuit.ops[start:stop]
        executed = [variable(w) for w in range(compiled.n_wires)]
        try:
            apply_slot_symbolic(executed, slot)
        except VerificationError as exc:
            report.error("RV101", where, str(exc))
            continue
        reference = [variable(w) for w in range(compiled.n_wires)]
        apply_ops_symbolic(reference, ops)
        mismatched = [
            wire
            for wire in range(compiled.n_wires)
            if executed[wire] != reference[wire]
        ]
        if mismatched:
            report.error(
                "RV300",
                where,
                f"slot transfer function differs from the sequential ops "
                f"on wires {mismatched}",
            )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def verify_compiled(
    circuit,
    compiled: CompiledCircuit | None = None,
    *,
    fuse: bool | None = None,
    report: DiagnosticReport | None = None,
    check_circuit: bool = True,
) -> DiagnosticReport:
    """Prove a compiled program equivalent to its circuit, symbolically.

    Runs the well-formedness pass first (a broken gate table makes the
    symbolic reference meaningless), then the three program layers:
    schedule mirroring + lowering correctness, fusion legality and
    bookkeeping, and per-slot transfer-function equality over fresh
    variables.  ``compiled`` defaults to ``compile_circuit(circuit,
    fuse=fuse)``; pass an explicit object to verify an artifact that
    did not come from the production compiler.  ``check_circuit=False``
    skips the well-formedness pass for callers that already ran it
    (e.g. ``python -m repro.verify`` verifying one circuit under
    several fusion modes).
    """
    if report is None:
        report = DiagnosticReport()
    label = circuit_label(circuit)
    if check_circuit:
        well_formed = DiagnosticReport()
        verify_circuit(circuit, report=well_formed)
        report.extend(well_formed)
        if not well_formed.ok:
            return report
    if compiled is None:
        compiled = compile_circuit(circuit, fuse=fuse)
    if compiled.n_wires != circuit.n_wires:
        report.error(
            "RV200",
            label,
            f"compiled program has {compiled.n_wires} wires, circuit has "
            f"{circuit.n_wires}",
        )
        return report
    schedule_ok = _verify_schedule(circuit, compiled, label, report)
    concat_ok = _verify_slot_concat(compiled, label, report)
    if concat_ok:
        _verify_slot_structure(compiled, label, report)
    # The transfer check needs only the slot partition to be meaningful
    # (slots concatenating to the schedule, schedule mirroring the
    # circuit) — it runs even when bookkeeping diagnostics fired, so
    # semantic corruption (RV300) is reported independently of
    # structural corruption (RV20#).
    if schedule_ok and concat_ok:
        _verify_slot_transfers(circuit, compiled, label, report)
    return report
