"""The structured-diagnostics core shared by both verifier halves.

Every finding of the symbolic IR verifier (``RV###`` codes) and the
codebase lint passes (``RL###`` codes) is a :class:`Diagnostic`: a
stable machine-readable code, a severity, a human-locatable position
(``file.py:12`` for lint, ``circuit 'EL' slot 3`` for IR), and a
message.  Codes are registered centrally in :data:`CODES` so that a
diagnostic can never be emitted under an unknown or retired code — CI
scripts and the mutation-kill suite match on codes, which makes the
registry part of the public contract.

Exit-code contract (shared by ``python -m tools.lint`` and
``python -m repro.verify``): **0** when no error-severity diagnostics
were produced, **1** when at least one was, **2** for driver/config
failures (unknown code selected, unreadable root) — the same convention
as compilers, so CI can distinguish "found violations" from "the tool
itself broke".
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.errors import VerificationError

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "EXIT_CLEAN",
    "EXIT_DRIVER_ERROR",
    "EXIT_FINDINGS",
    "Severity",
]

#: Exit codes of the verification/lint entry points.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_DRIVER_ERROR = 2


class Severity(enum.Enum):
    """How much a diagnostic matters to the exit code."""

    ERROR = "error"  #: a violation; makes the run fail (exit 1)
    WARNING = "warning"  #: suspicious but not failing
    NOTE = "note"  #: informational (e.g. parity classification)


#: The registry of stable diagnostic codes.  ``RV###`` codes belong to
#: the symbolic IR verifier, ``RL###`` codes to the codebase lints.
#: Codes are append-only: retiring one means keeping the entry with a
#: "(retired)" description, never reusing the number.
CODES: dict[str, str] = {
    # --- IR verifier: gate tables -------------------------------------
    "RV001": "gate table is not a bijection on its pattern space",
    "RV002": "gate table has the wrong number of entries for its arity",
    "RV003": "gate arity is invalid (< 1)",
    # --- IR verifier: circuit well-formedness -------------------------
    "RV010": "operation wire index out of range for the circuit",
    "RV011": "operation touches the same wire more than once",
    "RV012": "gate arity does not match the operation's wire count",
    "RV013": "reset discipline violation (bad value or gate/reset mix-up)",
    # --- IR verifier: classification notes ----------------------------
    "RV020": "parity classification of a gate table",
    # --- IR verifier: lowering ----------------------------------------
    "RV100": "lowered plane program disagrees with the gate table's ANF",
    "RV101": "plane program is structurally uninterpretable",
    # --- IR verifier: fusion legality ---------------------------------
    "RV200": "fused slots do not reconcile with the flat schedule",
    "RV201": "slot mixes gate and reset error classes",
    "RV202": "ops within one fused slot touch overlapping wires",
    "RV203": "slot class_offset disagrees with the recounted ops",
    "RV204": "op_group/op_row bookkeeping is inconsistent",
    "RV205": "slot group rows do not match the member ops",
    "RV206": "stacked wire-matrix index out of wire bounds",
    "RV207": "row_slices view disagrees with its wire-matrix column",
    "RV208": "reset partition disagrees with the slot's reset ops",
    # --- IR verifier: semantic equivalence ----------------------------
    "RV300": "slot transfer function differs from the sequential ops",
    # --- IR verifier: backend prepared programs -----------------------
    "RV400": "prepared program type has no registered verifier",
    "RV401": "backend kernel plan computes a different function",
    "RV402": "backend kernel plan is uninterpretable",
    # --- Lints: RNG / determinism purity ------------------------------
    "RL100": "randomness or wall-clock call outside the noise layer",
    "RL110": "set iteration inside a key/hash computation",
    "RL111": "unsorted dict iteration inside a key/hash computation",
    "RL112": "json.dumps without sort_keys inside a key/hash computation",
    # --- Lints: import layering ---------------------------------------
    "RL200": "import breaks the layering DAG (upward or cross-layer)",
    "RL201": "deferred upward import not on the documented allowlist",
    "RL202": "module outside the known layer map",
    # --- Lints: error discipline --------------------------------------
    "RL300": "bare builtin exception raised instead of a repro.errors type",
    "RL301": "assert used for validation (only is-not-None narrowing allowed)",
    # --- Lints: deprecation audit -------------------------------------
    "RL400": "reference to a deprecated entry point",
    # --- Lints: timing front door -------------------------------------
    "RL500": "raw time.* call outside the repro.obs clock front door",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, severity, location, message."""

    code: str
    severity: Severity
    location: str
    message: str

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise VerificationError(
                f"diagnostic code {self.code!r} is not registered in "
                f"repro.verify.diagnostics.CODES"
            )

    def to_json(self) -> dict:
        """The machine-readable wire form."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }

    def __str__(self) -> str:
        return (
            f"{self.location}: {self.severity.value}: "
            f"{self.code}: {self.message}"
        )


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with the exit-code contract."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        severity: Severity,
        location: str,
        message: str,
    ) -> Diagnostic:
        """Append one diagnostic (validating its code) and return it."""
        diagnostic = Diagnostic(code, severity, location, message)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def error(self, code: str, location: str, message: str) -> Diagnostic:
        """Shorthand for :meth:`add` at error severity."""
        return self.add(code, Severity.ERROR, location, message)

    def note(self, code: str, location: str, message: str) -> Diagnostic:
        """Shorthand for :meth:`add` at note severity."""
        return self.add(code, Severity.NOTE, location, message)

    def extend(self, other: "DiagnosticReport") -> "DiagnosticReport":
        """Fold another report's diagnostics into this one."""
        self.diagnostics.extend(other.diagnostics)
        return self

    @property
    def errors(self) -> list[Diagnostic]:
        """The error-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was produced."""
        return not self.errors

    def codes(self) -> list[str]:
        """The codes emitted, in order (convenience for tests)."""
        return [d.code for d in self.diagnostics]

    def has(self, code: str) -> bool:
        """Whether any diagnostic carries ``code``."""
        return any(d.code == code for d in self.diagnostics)

    def exit_code(self) -> int:
        """0 when clean, 1 when any error-severity finding exists."""
        return EXIT_CLEAN if self.ok else EXIT_FINDINGS

    def to_json(self) -> dict:
        """The machine-readable report: counts plus every diagnostic."""
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "total": len(self.diagnostics),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def render(self) -> str:
        """Human-readable one-line-per-diagnostic rendering."""
        return "\n".join(str(d) for d in self.diagnostics)

    def render_json(self) -> str:
        """The JSON rendering with deterministic key order."""
        return json.dumps(self.to_json(), sort_keys=True, indent=2)
