"""``python -m repro.verify`` — the CI symbolic-verification entry point.

Runs the full IR verification stack over the circuit corpus
(:mod:`repro.verify.corpus`): well-formedness and parity classification
per circuit, compiled-program equivalence under both fusion modes, and
prepared-program equivalence for every registered backend.  No
simulation happens anywhere in this process.

Exit codes follow the shared contract of
:mod:`repro.verify.diagnostics`: 0 clean, 1 when any error-severity
diagnostic fired, 2 for driver failures.
"""

from __future__ import annotations

import argparse
import sys

from repro.backends.registry import available_backends, get_backend
from repro.core.compiled import compile_circuit
from repro.verify.backends import verify_prepared
from repro.verify.corpus import corpus
from repro.verify.diagnostics import (
    EXIT_DRIVER_ERROR,
    DiagnosticReport,
    Severity,
)
from repro.verify.ir import verify_circuit
from repro.verify.program import verify_compiled


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Symbolically verify the circuit corpus (no simulation).",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--backend",
        action="append",
        default=None,
        help="backend(s) to verify prepared programs for "
        "(default: every registered backend)",
    )
    parser.add_argument(
        "--notes",
        action="store_true",
        help="include RV020 parity-classification notes in the text output",
    )
    arguments = parser.parse_args(argv)

    backend_names = arguments.backend or list(available_backends())
    try:
        backends = [get_backend(name) for name in backend_names]
    except Exception as exc:
        print(f"driver error: {exc}", file=sys.stderr)
        return EXIT_DRIVER_ERROR

    report = DiagnosticReport()
    checked = 0
    for _name, circuit in corpus():
        well_formed = DiagnosticReport()
        verify_circuit(circuit, report=well_formed)
        report.extend(well_formed)
        if not well_formed.ok:
            continue
        for fuse in (True, False):
            compiled = compile_circuit(circuit, fuse=fuse)
            verify_compiled(
                circuit, compiled, report=report, check_circuit=False
            )
            for backend in backends:
                verify_prepared(circuit, backend, compiled, report=report)
        checked += 1

    if arguments.json:
        print(report.render_json())
    else:
        for diagnostic in report.diagnostics:
            if diagnostic.severity is Severity.NOTE and not arguments.notes:
                continue
            print(diagnostic)
        status = "clean" if report.ok else f"{len(report.errors)} error(s)"
        print(
            f"verified {checked} corpus circuits under both fusion modes "
            f"and backends {', '.join(backend_names)}: {status}"
        )
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
