"""Static verification: the symbolic IR verifier and the codebase lints.

Two halves share one structured-diagnostics core
(:mod:`repro.verify.diagnostics`):

* the **symbolic IR verifier** (``RV###`` codes) proves circuits
  well-formed and compiled/prepared plane programs semantically equal
  to the gate-by-gate reference by canonical GF(2)/ANF polynomial
  equivalence — :func:`verify_circuit`, :func:`verify_compiled`,
  :func:`verify_prepared`, and ``python -m repro.verify`` over the
  CI corpus;
* the **codebase lints** (``RL###`` codes) live in
  :mod:`repro.verify.codelint` and run through ``python -m tools.lint``.
"""

from repro.verify.backends import (
    PROGRAM_VERIFIERS,
    verifier_for,
    verify_prepared,
)
from repro.verify.corpus import corpus
from repro.verify.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from repro.verify.ir import check_gate, classify_parity, verify_circuit
from repro.verify.program import verify_compiled

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "PROGRAM_VERIFIERS",
    "Severity",
    "check_gate",
    "classify_parity",
    "corpus",
    "verifier_for",
    "verify_circuit",
    "verify_compiled",
    "verify_prepared",
]
