"""Circuit well-formedness checks and the parity classifier.

Everything here is checked from first principles over the raw gate
tables and operation lists — deliberately *not* trusting the
construction-time validation in :mod:`repro.core.circuit` and
:mod:`repro.core.gate`, because the corruption paths this verifier
exists to catch (mutated ``_ops`` lists, forged frozen dataclasses,
deserialized artifacts) bypass ``__post_init__`` entirely.

The parity classifier implements the invariant observation of Alves'
"Detecting Errors in Reversible Circuits With Invariant Relationships":
a gate whose table permutes bits **conserves** Hamming weight, one that
merely keeps the XOR of all bits fixed **preserves** parity, and
anything else **mixes** parity.  Weight-conserving gates (SWAP,
FREDKIN, the SWAP3 rotations) admit the zero-tolerance runtime oracles
of ``tests/core/test_engine_invariants.py``; the classification is
emitted as an ``RV020`` note per distinct gate so reports double as a
statically-derived invariant inventory.
"""

from __future__ import annotations

from repro.verify.diagnostics import DiagnosticReport

__all__ = [
    "check_gate",
    "circuit_label",
    "classify_parity",
    "verify_circuit",
]


def circuit_label(circuit) -> str:
    """A stable human-readable location prefix for a circuit."""
    name = getattr(circuit, "name", "")
    if name:
        return f"circuit {name!r}"
    return f"circuit <{circuit.n_wires} wires>"


def check_gate(gate, location: str, report: DiagnosticReport) -> bool:
    """Structural checks on one gate table; True when the gate is sound."""
    sound = True
    arity = gate.arity
    if not isinstance(arity, int) or arity < 1:
        report.error(
            "RV003", location, f"gate arity must be >= 1, found {arity!r}"
        )
        return False
    size = 1 << arity
    table = gate.table
    if len(table) != size:
        report.error(
            "RV002",
            location,
            f"table has {len(table)} entries, expected {size} for "
            f"arity {arity}",
        )
        return False
    if sorted(table) != list(range(size)):
        missing = sorted(set(range(size)) - set(table))
        report.error(
            "RV001",
            location,
            f"table is not a permutation of 0..{size - 1} "
            f"(missing outputs: {missing})",
        )
        sound = False
    return sound


def classify_parity(gate) -> str:
    """``conserving`` | ``preserving`` | ``mixing`` for a sound gate.

    * ``conserving`` — every row keeps the Hamming weight (the gate is
      a permutation of wire values: SWAP-like);
    * ``preserving`` — every row keeps the XOR of all bits, but some
      row changes the weight;
    * ``mixing`` — some row changes the overall parity (MAJ, CNOT, X).
    """
    conserving = True
    preserving = True
    for pattern, image in enumerate(gate.table):
        if pattern.bit_count() != image.bit_count():
            conserving = False
        if (pattern.bit_count() ^ image.bit_count()) & 1:
            preserving = False
    if conserving:
        return "conserving"
    if preserving:
        return "preserving"
    return "mixing"


def verify_circuit(circuit, report: DiagnosticReport | None = None) -> DiagnosticReport:
    """Well-formedness of a circuit, with no simulation.

    Checks every operation's wire bounds and distinctness, gate/reset
    discipline, and every distinct gate's table (bijectivity, arity,
    size); sound gates additionally get an ``RV020`` parity-class note.
    """
    if report is None:
        report = DiagnosticReport()
    label = circuit_label(circuit)
    if not isinstance(circuit.n_wires, int) or circuit.n_wires < 1:
        report.error(
            "RV010", label, f"circuit wire count {circuit.n_wires!r} is invalid"
        )
        return report

    seen_gates: dict[str, bool] = {}
    for index, op in enumerate(circuit.ops):
        where = f"{label} op {index}"
        wires = op.wires
        if len(set(wires)) != len(wires):
            report.error(
                "RV011", where, f"wires {wires} are not pairwise distinct"
            )
        if not wires:
            report.error("RV011", where, "operation touches no wires")
        for wire in wires:
            if not isinstance(wire, int) or not 0 <= wire < circuit.n_wires:
                report.error(
                    "RV010",
                    where,
                    f"wire {wire!r} out of range for {circuit.n_wires} wires",
                )
        if op.is_reset:
            if op.gate is not None:
                report.error(
                    "RV013", where, "reset operation carries a gate"
                )
            if op.reset_value not in (0, 1):
                report.error(
                    "RV013",
                    where,
                    f"reset value must be 0 or 1, found {op.reset_value!r}",
                )
            continue
        gate = op.gate
        if gate is None:
            report.error("RV013", where, "gate operation carries no gate")
            continue
        if gate.arity != len(wires):
            report.error(
                "RV012",
                where,
                f"gate {gate.name!r} has arity {gate.arity} but the "
                f"operation touches {len(wires)} wires",
            )
        if gate.name not in seen_gates:
            gate_where = f"{label} gate {gate.name!r}"
            sound = check_gate(gate, gate_where, report)
            seen_gates[gate.name] = sound
            if sound:
                report.note(
                    "RV020",
                    gate_where,
                    f"parity class: {classify_parity(gate)}",
                )
    return report
