"""The circuit corpus the CI verification job proves correct.

Everything a published number can flow through: one single-gate
circuit per library gate (so every table and every lowered program is
covered), every :data:`~repro.core.decompositions.DECOMPOSITIONS`
entry (the synthesized constructions, applied to their target wires),
and the paper's recovery cycle with and without its ancilla resets —
the circuit whose transversal structure exercises multi-op fused slots
and stacked groups three wide.
"""

from __future__ import annotations

from repro.coding.recovery import recovery_circuit
from repro.core.circuit import Circuit
from repro.core.decompositions import DECOMPOSITIONS
from repro.core.library import REGISTRY

__all__ = ["corpus"]


def corpus() -> list[tuple[str, Circuit]]:
    """``(name, circuit)`` pairs, in deterministic order."""
    entries: list[tuple[str, Circuit]] = []
    for name in sorted(REGISTRY):
        gate = REGISTRY[name]
        circuit = Circuit(gate.arity, name=f"lib:{name}")
        circuit.append_gate(gate, *range(gate.arity))
        entries.append((f"lib:{name}", circuit))
    for name in sorted(DECOMPOSITIONS):
        circuit, _gate, _targets = DECOMPOSITIONS[name]
        entries.append((f"decomp:{name}", circuit))
    entries.append(("recovery:EL", recovery_circuit(include_resets=True)))
    entries.append(
        ("recovery:EL-no-resets", recovery_circuit(include_resets=False))
    )
    return entries
