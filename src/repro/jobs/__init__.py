"""repro.jobs — the resumable sweep service on top of the runtime.

The runtime (:mod:`repro.runtime`) answers "run these specs, now, in
this process".  This package turns that into a durable service:

* :mod:`~repro.jobs.store` — a content-keyed result store; a point
  computed once is never simulated again.
* :mod:`~repro.jobs.caching` — :class:`CachingExecutor`, the plain
  executor's surface with the store consulted per point.
* :mod:`~repro.jobs.planner` — deterministic, program-affine shard
  planning over a spec batch.
* :mod:`~repro.jobs.runner` — :class:`SweepJob`: submit, checkpoint,
  crash-safe resume, bit-identical collect/merge.

The whole layer preserves the executor's bit-identity guarantee: a
sharded, interrupted, resumed, store-served sweep returns exactly the
numbers one uninterrupted :meth:`~repro.runtime.Executor.run` would.
``tools/jobs.py`` exposes submit/status/collect on the command line.
"""

from repro.jobs.caching import CachingExecutor
from repro.jobs.planner import DEFAULT_SHARD_SIZE, Shard, plan_shards
from repro.jobs.runner import (
    JOB_FORMAT_VERSION,
    JobStatus,
    RunReport,
    SweepJob,
)
from repro.jobs.store import (
    RESULT_STREAM_VERSION,
    STORE_FORMAT_VERSION,
    ResultStore,
    point_key,
)

__all__ = [
    "CachingExecutor",
    "DEFAULT_SHARD_SIZE",
    "JOB_FORMAT_VERSION",
    "JobStatus",
    "RESULT_STREAM_VERSION",
    "ResultStore",
    "RunReport",
    "STORE_FORMAT_VERSION",
    "Shard",
    "SweepJob",
    "plan_shards",
    "point_key",
]
