"""Deterministic shard planning for spec batches.

A *shard* is the unit of checkpointing and fan-out: a slice of the
submitted spec list small enough to re-run cheaply after a crash and
large enough to amortise one compiled program.  The planner's
obligations:

* **Determinism.**  The same spec list (same circuits, noise, trials,
  integer seeds) always plans the same shards with the same IDs — a
  resumed process replans from the manifest's specs and must agree
  with the process that died.
* **Program affinity.**  Specs are grouped by circuit content and
  input vector *before* chunking, so every shard's points share one
  compiled program and ride one stacked plane array inside the
  executor.  A worker that warms the compile cache once then runs a
  shard never recompiles.
* **Bit-identity.**  Shards never touch seeds: each point keeps the
  integer seed it was submitted with (the per-point seed-spawning
  discipline of :func:`repro.harness.sweep.spawn_seeds`), so the union
  of shard results is bit-identical to a single
  :meth:`~repro.runtime.Executor.run` over the whole list, however the
  shards are scheduled.

Shard IDs hash the member points' store keys
(:func:`repro.jobs.store.point_key` — circuit content, noise, trials,
seed, engine, fuse) plus their positions, so an ID is stable across
resubmissions and unique within a job even when two points coincide.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import AnalysisError, JobError
from repro.jobs.store import point_key
from repro.runtime.serialization import canonical_json
from repro.runtime.spec import ExecutionPolicy, RunSpec

__all__ = ["DEFAULT_SHARD_SIZE", "Shard", "plan_shards"]

#: Points per shard when the caller does not choose.  Small enough
#: that an interrupted million-point sweep loses at most this many
#: points of work, large enough that per-shard overhead (one manifest
#: line, one checkpoint file) stays negligible.
DEFAULT_SHARD_SIZE = 64


@dataclass(frozen=True)
class Shard:
    """One planned shard: a stable ID plus spec-list positions."""

    shard_id: str
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def _shard_id(keys: Sequence[str], indices: Sequence[int]) -> str:
    payload = {"points": list(keys), "indices": list(indices)}
    digest = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
    return f"s{digest[:16]}"


def plan_shards(
    specs: Sequence[RunSpec],
    policy: ExecutionPolicy,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> list[Shard]:
    """Split ``specs`` into deterministic, program-affine shards.

    Every spec must carry an integer seed (the reproducibility
    contract of the store and of resume); violations raise
    :class:`~repro.errors.JobError` naming the offending position.
    """
    if shard_size < 1:
        raise AnalysisError(f"shard_size must be >= 1, got {shard_size}")
    for index, spec in enumerate(specs):
        if not isinstance(spec.seed, int):
            raise JobError(
                f"spec {index} has seed {spec.seed!r}; sharded execution "
                f"requires integer per-point seeds (spawn them with "
                f"repro.harness.sweep.spawn_seeds)"
            )
    keys = [point_key(spec, policy) for spec in specs]
    groups: dict[tuple, list[int]] = {}
    for index, spec in enumerate(specs):
        group = (spec.circuit.content_key(), spec.input_bits)
        groups.setdefault(group, []).append(index)
    shards: list[Shard] = []
    for indices in groups.values():
        for start in range(0, len(indices), shard_size):
            chunk = tuple(indices[start:start + shard_size])
            shards.append(
                Shard(_shard_id([keys[i] for i in chunk], chunk), chunk)
            )
    return shards
