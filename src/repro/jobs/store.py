"""The content-keyed result store: durable Monte-Carlo point results.

Every Monte-Carlo point in this repository is fully determined by its
:class:`~repro.runtime.RunSpec` (circuit content, input, observable,
noise, trials, integer seed) plus the *result-affecting* half of the
:class:`~repro.runtime.ExecutionPolicy` — the resolved engine and the
fusion flag, which select the RNG stream.  Backend choice, pool width,
and batching are execution details the executor guarantees can never
change a number, so they are deliberately **not** part of the key;
they are recorded as provenance instead.

:func:`point_key` hashes exactly that determining tuple (through the
versioned JSON wire form of :mod:`repro.runtime.serialization`), and
:class:`ResultStore` is a directory of one small JSON file per key.
Properties the job layer leans on:

* **Cache hits on repeat queries.**  Re-submitting a sweep whose
  points are already stored costs file reads, not simulation.
* **Crash safety.**  Writes go to a temp file and ``os.replace`` into
  place, so a killed run leaves complete entries or none — never a
  half-written one that resume would trust.
* **Stale/corrupt detection, never silent serving.**  Entries embed
  their own key, format version, and full spec wire form; a lookup
  re-verifies all three and raises :class:`~repro.errors.JobError` on
  any mismatch.  An entry produced under a different RNG stream
  version or engine simply has a different key and is a clean miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro._version import __version__
from repro.errors import JobError
from repro.noise.monte_carlo import resolve_engine
from repro.obs import counter
from repro.runtime.serialization import (
    canonical_json,
    compress_for_hashing,
    spec_to_json,
)
from repro.runtime.spec import ExecutionPolicy, PointResult, RunSpec

__all__ = [
    "RESULT_STREAM_VERSION",
    "STORE_FORMAT_VERSION",
    "ResultStore",
    "point_key",
]

#: Version of a store entry's on-disk shape.  Bump on layout changes.
STORE_FORMAT_VERSION = 1

#: Version of the engines' RNG stream contract.  The frozen digests in
#: ``tests/noise/test_engine_determinism.py`` pin the streams; if they
#: are ever deliberately re-recorded (as PR 2 once did), bump this so
#: every pre-change store entry stops matching instead of serving
#: results from a stream that no longer exists.
RESULT_STREAM_VERSION = 1


def _key_from_wire(
    spec: RunSpec, spec_json: dict, policy: ExecutionPolicy
) -> str:
    # Hash the digest-compressed payload: embedded circuit fragments
    # collapse to their (memoised) content digests, so keying a
    # 10-point sweep serializes the shared circuit once, not 20 times.
    payload = {
        "format": STORE_FORMAT_VERSION,
        "stream": RESULT_STREAM_VERSION,
        "engine": resolve_engine(policy.engine, spec.trials),
        "fuse": policy.fuse,
        "spec": compress_for_hashing(spec_json),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _require_integer_seed(spec: RunSpec) -> None:
    if not isinstance(spec.seed, int):
        raise JobError(
            f"a stored point must be reproducible, which needs an integer "
            f"seed; got {spec.seed!r} (spawn per-point seeds with "
            f"repro.harness.sweep.spawn_seeds)"
        )


def point_key(spec: RunSpec, policy: ExecutionPolicy) -> str:
    """The content key determining one point's result, as a hex digest.

    Hashes the spec's JSON wire form together with the resolved engine,
    the fusion flag, and the stream/format versions — everything that
    can change a failure count, and nothing that cannot.  Requires a
    concrete integer seed: a ``None`` or generator seed draws from an
    unreproducible stream, and a store keyed on it would serve numbers
    no one can ever check.
    """
    _require_integer_seed(spec)
    return _key_from_wire(spec, spec_to_json(spec), policy)


# Store traffic metrics (repro.obs).  Dual-accounted with the
# per-instance ints: instance counters answer "what did THIS store see"
# (the stats() contract the tests pin), the registry counters aggregate
# across every store in the process for trace/metrics dumps.
_STORE_HITS = counter("jobs.store.hit")
_STORE_MISSES = counter("jobs.store.miss")
_STORE_PUTS = counter("jobs.store.put")
_STORE_STALE = counter("jobs.store.stale")


class ResultStore:
    """A directory of JSON point results keyed by :func:`point_key`.

    Entries live two levels deep (``<root>/<key[:2]>/<key>.json``) so
    a million-point store never puts a million files in one directory.
    The store counts its traffic — ``hits``/``misses``/``puts``/
    ``stale`` — which is how the tests assert "served entirely from
    the store, zero simulation".
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.stale = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(
        self, spec: RunSpec, policy: ExecutionPolicy
    ) -> PointResult | None:
        """The stored result for ``spec`` under ``policy``, or ``None``.

        A present-but-wrong entry — unreadable JSON, foreign format
        version, key not matching the content, spec wire form not
        matching the request, insane counts — raises
        :class:`~repro.errors.JobError` naming the file.  Detection is
        the contract: a stale entry must never be silently served *or*
        silently recomputed over.
        """
        # One serialization serves both the key and the verification
        # compare — the warm path's cost is file reads plus this.
        _require_integer_seed(spec)
        spec_json = spec_to_json(spec)
        key = _key_from_wire(spec, spec_json, policy)
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            _STORE_MISSES.inc()
            return None
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            self.stale += 1
            _STORE_STALE.inc()
            raise JobError(
                f"result store entry {path} is unreadable: {exc}; delete "
                f"it to recompute"
            ) from exc
        self._verify(entry, key, spec, spec_json, path)
        self.hits += 1
        _STORE_HITS.inc()
        result = entry["result"]
        return PointResult(
            failures=result["failures"],
            trials=result["trials"],
            faulted_trials=result["faulted_trials"],
            engine=result["engine"],
        )

    def _verify(
        self, entry: dict, key: str, spec: RunSpec, spec_json: dict, path: Path
    ) -> None:
        problems = []
        if entry.get("format") != STORE_FORMAT_VERSION:
            problems.append(
                f"format {entry.get('format')!r} != {STORE_FORMAT_VERSION}"
            )
        if entry.get("key") != key:
            problems.append("embedded key does not match the content key")
        if entry.get("spec") != spec_json:
            problems.append("stored spec differs from the requested spec")
        result = entry.get("result")
        if not isinstance(result, dict):
            problems.append("missing result block")
        else:
            failures = result.get("failures")
            trials = result.get("trials")
            if trials != spec.trials:
                problems.append(
                    f"stored trials {trials!r} != spec trials {spec.trials}"
                )
            if (
                not isinstance(failures, int)
                or not isinstance(trials, int)
                or not 0 <= failures <= trials
                or not 0 <= result.get("faulted_trials", -1) <= trials
            ):
                problems.append("result counts out of range")
        if problems:
            self.stale += 1
            _STORE_STALE.inc()
            raise JobError(
                f"stale result store entry {path}: {'; '.join(problems)}; "
                f"delete it to recompute"
            )

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def put(
        self, spec: RunSpec, policy: ExecutionPolicy, result: PointResult
    ) -> str:
        """Durably record ``result`` for ``spec``; returns the key.

        The write is atomic (temp file + ``os.replace`` in the same
        directory), so a crash mid-put leaves the previous state, not
        a torn entry.
        """
        if result.trials != spec.trials:
            raise JobError(
                f"result has {result.trials} trials but spec asked for "
                f"{spec.trials}; refusing to store a mismatched entry"
            )
        _require_integer_seed(spec)
        spec_json = spec_to_json(spec)
        key = _key_from_wire(spec, spec_json, policy)
        entry = {
            "format": STORE_FORMAT_VERSION,
            "key": key,
            "spec": spec_json,
            "provenance": {
                "version": __version__,
                "stream": RESULT_STREAM_VERSION,
                "engine": resolve_engine(policy.engine, spec.trials),
                "backend": policy.backend,
                "fuse": policy.fuse,
            },
            "result": {
                "failures": result.failures,
                "trials": result.trials,
                "faulted_trials": result.faulted_trials,
                "engine": result.engine,
            },
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.puts += 1
        _STORE_PUTS.inc()
        return key

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> dict[str, int]:
        """Traffic counters since construction."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "stale": self.stale,
        }
