"""The sweep job runner: submit, checkpoint, resume, collect.

A *job* is a durable directory representing one sweep — a batch of
:class:`~repro.runtime.RunSpec` points — split into deterministic
shards (:mod:`repro.jobs.planner`) and executed with per-shard
checkpointing against a content-keyed result store
(:mod:`repro.jobs.store`).  Layout::

    <job_dir>/
        manifest.json        # versioned: specs (JSON wire form),
                             # shard plan, result-affecting policy
        shards/<id>.json     # one checkpoint per completed shard
        store/               # the result store (unless shared)

The contract that makes this a *service* rather than a script:

* **Submit is idempotent.**  Re-submitting the same sweep into an
  existing job directory verifies the job ID (a hash of the shard
  plan) and resumes; submitting a *different* sweep into it fails
  loudly instead of silently mixing results.
* **Resume is crash-safe.**  A killed run leaves complete shard
  checkpoints or none (atomic writes); the next :meth:`SweepJob.run`
  re-executes only shards without checkpoints, and the store serves
  any points the dead run finished inside an unfinished shard.
* **Merge is bit-identical.**  Every point keeps its own integer seed
  and the executor's stacking guarantee, so :meth:`SweepJob.collect`
  returns exactly what one uninterrupted
  :meth:`~repro.runtime.Executor.run` over the submitted specs would
  — pinned by ``tests/jobs/test_resume.py``.

Worker pools fan out over *shards*; each worker warms the compile
cache with the job's distinct circuits once (pool initializer), so
shards sharing a circuit group reuse one compiled program instead of
recompiling per shard or per point.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from functools import partial
from pathlib import Path

from repro.core.compiled import warm_compile_cache
from repro.errors import AnalysisError, JobError
from repro.harness.stats import RateEstimate
from repro.jobs.caching import CachingExecutor
from repro.jobs.planner import DEFAULT_SHARD_SIZE, Shard, plan_shards
from repro.jobs.store import ResultStore, point_key
from repro.obs import (
    counter,
    enable_tracing,
    flush_trace_if_forked,
    gauge,
    histogram,
    stopwatch,
    trace,
)
from repro.runtime.executor import Executor, resolve_workers
from repro.runtime.serialization import canonical_json, spec_from_json, spec_to_json
from repro.runtime.spec import ExecutionPolicy, PointResult, RunSpec

__all__ = ["JOB_FORMAT_VERSION", "JobStatus", "RunReport", "SweepJob"]

#: Version of the manifest/checkpoint on-disk shape.
JOB_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
SHARD_DIR = "shards"
STORE_DIR = "store"

# Job-layer metrics (repro.obs): shard throughput plus the live
# done/total gauges a heartbeat reads mid-run.
_SHARDS_RUN = counter("jobs.shards.run")
_SHARD_SECONDS = histogram("jobs.shard_seconds")
_SHARDS_TOTAL = gauge("jobs.shards.total")
_SHARDS_DONE = gauge("jobs.shards.done")


def _write_atomic(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.stem[:12]}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class JobStatus:
    """A job's progress snapshot."""

    job_id: str
    shards_total: int
    shards_done: int
    points_total: int
    points_done: int

    @property
    def complete(self) -> bool:
        return self.shards_done == self.shards_total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"job {self.job_id}: {self.shards_done}/{self.shards_total} "
            f"shards, {self.points_done}/{self.points_total} points"
        )


@dataclass(frozen=True)
class RunReport:
    """What one :meth:`SweepJob.run` call actually did.

    ``interrupted`` is True when a ``max_shards`` budget stopped the
    run before every pending shard executed — the job needs another
    :meth:`~SweepJob.run` (or a resubmit) to finish.
    """

    shards_run: int
    shards_skipped: int
    simulated_points: int
    cached_points: int
    interrupted: bool


def _run_shard_specs(
    specs: list[RunSpec], policy: ExecutionPolicy
) -> tuple[list[PointResult], float]:
    """Pool task: evaluate one shard's pending specs in-process.

    The policy arrives with ``parallel`` stripped (a worker must not
    open a nested pool); the shard's points still stack into one plane
    array inside the executor.  Returns the results together with the
    shard's wall-clock seconds, measured in the worker (the parent's
    clock would include pool queueing).
    """
    if policy.trace:
        enable_tracing(policy.trace)
    with trace("jobs.shard", points=len(specs)):
        watch = stopwatch()
        results = Executor(policy).run(specs)
        elapsed = watch.elapsed_s
    # Pool children exit via os._exit (no atexit), so the worker's
    # `<path>.<pid>` document is rewritten after each completed shard.
    flush_trace_if_forked()
    return results, elapsed


class SweepJob:
    """One durable sharded sweep rooted at a job directory."""

    def __init__(
        self,
        job_dir: str | Path,
        specs: list[RunSpec],
        shards: list[Shard],
        policy: ExecutionPolicy,
        store: ResultStore,
        job_id: str,
    ):
        self.job_dir = Path(job_dir)
        self.specs = specs
        self.shards = shards
        self.policy = policy
        self.store = store
        self.job_id = job_id

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    @staticmethod
    def _job_id(specs: Sequence[RunSpec], policy: ExecutionPolicy) -> str:
        """The sweep's identity: its ordered point keys, nothing else.

        Shard size is a scheduling choice, not part of what the sweep
        *is* — resubmitting the same points resumes under the
        manifest's stored plan even if the caller's ``shard_size``
        drifted.
        """
        payload = [point_key(spec, policy) for spec in specs]
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]

    @classmethod
    def submit(
        cls,
        job_dir: str | Path,
        specs: Sequence[RunSpec],
        policy: ExecutionPolicy | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        store: ResultStore | str | Path | None = None,
    ) -> "SweepJob":
        """Create (or resume) the job for ``specs`` under ``job_dir``.

        Writes the manifest on first submit; on resubmit verifies the
        existing manifest describes the *same* sweep (matching job ID)
        and raises :class:`~repro.errors.JobError` otherwise.  ``store``
        defaults to a store inside the job directory; passing a shared
        store lets many jobs (and ad-hoc
        :class:`~repro.jobs.caching.CachingExecutor` queries) reuse
        each other's points.
        """
        with trace("jobs.submit") as span:
            job = cls._submit_impl(job_dir, specs, policy, shard_size, store)
            span.set(
                job=job.job_id,
                points=len(job.specs),
                shards=len(job.shards),
            )
        return job

    @classmethod
    def _submit_impl(cls, job_dir, specs, policy, shard_size, store):
        job_dir = Path(job_dir)
        specs = list(specs)
        if not specs:
            raise AnalysisError("a sweep job needs at least one spec")
        if policy is None:
            policy = ExecutionPolicy.from_env()
        shards = plan_shards(specs, policy, shard_size)
        job_id = cls._job_id(specs, policy)
        manifest_path = job_dir / MANIFEST_NAME
        if manifest_path.exists():
            existing = cls.load(job_dir, store=store)
            if existing.job_id != job_id:
                raise JobError(
                    f"{job_dir} already holds job {existing.job_id}, which "
                    f"is a different sweep than the one submitted "
                    f"({job_id}); use a fresh job directory"
                )
            # Same sweep: resume under the manifest's stored shard
            # plan (shard_size is scheduling, not identity).
            return existing
        manifest = {
            "format": JOB_FORMAT_VERSION,
            "job_id": job_id,
            "policy": {
                "engine": policy.engine,
                "backend": policy.backend,
                "fuse": policy.fuse,
                "compile_cache": policy.compile_cache,
            },
            "specs": [spec_to_json(spec) for spec in specs],
            "shards": [
                {"id": shard.shard_id, "indices": list(shard.indices)}
                for shard in shards
            ],
        }
        _write_atomic(manifest_path, manifest)
        return cls(
            job_dir, specs, shards, policy, cls._store(job_dir, store), job_id
        )

    @classmethod
    def load(
        cls,
        job_dir: str | Path,
        store: ResultStore | str | Path | None = None,
    ) -> "SweepJob":
        """Open an existing job from its manifest.

        The specs are rebuilt from their JSON wire forms — this is the
        resume path, and it is why the wire form must be
        value-faithful: the reloaded job verifies its shard plan
        hashes to the manifest's job ID, so a manifest whose specs no
        longer reproduce their own plan fails here instead of merging
        wrong numbers later.
        """
        job_dir = Path(job_dir)
        manifest_path = job_dir / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except OSError as exc:
            raise JobError(f"no job manifest at {manifest_path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise JobError(
                f"job manifest {manifest_path} is corrupt: {exc}"
            ) from exc
        if manifest.get("format") != JOB_FORMAT_VERSION:
            raise JobError(
                f"job manifest {manifest_path} has format "
                f"{manifest.get('format')!r}; this code reads "
                f"{JOB_FORMAT_VERSION}"
            )
        stored_policy = manifest["policy"]
        policy = ExecutionPolicy.from_env(
            engine=stored_policy["engine"],
            backend=stored_policy["backend"],
            fuse=stored_policy["fuse"],
            compile_cache=stored_policy["compile_cache"],
        )
        # Only the result-affecting knobs are pinned by the manifest;
        # from_env may still override e.g. REPRO_PARALLEL, but engine
        # and fuse must match what the job's store keys were built
        # with, so the manifest's values win.
        policy = replace(
            policy,
            engine=stored_policy["engine"],
            fuse=stored_policy["fuse"],
        )
        specs = [spec_from_json(data) for data in manifest["specs"]]
        shards = [
            Shard(entry["id"], tuple(entry["indices"]))
            for entry in manifest["shards"]
        ]
        job_id = manifest["job_id"]
        # The reloaded specs must hash back to the manifest's job ID —
        # this is where a wire form that is not value-faithful (or a
        # hand-edited manifest) fails, instead of merging wrong
        # numbers later.
        if cls._job_id(specs, policy) != job_id:
            raise JobError(
                f"job manifest {manifest_path} specs do not hash to its "
                f"job id; the manifest was edited or corrupted"
            )
        covered = sorted(i for shard in shards for i in shard.indices)
        if covered != list(range(len(specs))):
            raise JobError(
                f"job manifest {manifest_path} shard plan does not cover "
                f"each spec exactly once; the manifest was edited or "
                f"corrupted"
            )
        return cls(
            job_dir, specs, shards, policy, cls._store(job_dir, store), job_id
        )

    @staticmethod
    def _store(
        job_dir: Path, store: ResultStore | str | Path | None
    ) -> ResultStore:
        if isinstance(store, ResultStore):
            return store
        return ResultStore(store if store is not None else job_dir / STORE_DIR)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def _shard_path(self, shard: Shard) -> Path:
        return self.job_dir / SHARD_DIR / f"{shard.shard_id}.json"

    def _load_checkpoint(self, shard: Shard) -> list[PointResult] | None:
        """The shard's checkpointed results, or ``None`` if not done.

        An unreadable checkpoint counts as *not done* (a crash can
        leave none, never a torn one — but a foreign file could sit
        there) while a readable checkpoint that contradicts the
        manifest raises: that is corruption, not interruption.
        """
        path = self._shard_path(shard)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            data.get("format") != JOB_FORMAT_VERSION
            or data.get("shard_id") != shard.shard_id
            or data.get("job_id") != self.job_id
        ):
            raise JobError(
                f"shard checkpoint {path} does not belong to this job; "
                f"delete it to re-run the shard"
            )
        points = data.get("points", [])
        if [p.get("index") for p in points] != list(shard.indices):
            raise JobError(
                f"shard checkpoint {path} covers different points than the "
                f"manifest plans; delete it to re-run the shard"
            )
        results = []
        for entry in points:
            result = entry["result"]
            spec = self.specs[entry["index"]]
            if not 0 <= result["failures"] <= result["trials"] or (
                result["trials"] != spec.trials
            ):
                raise JobError(
                    f"shard checkpoint {path} holds counts inconsistent "
                    f"with the manifest spec; delete it to re-run"
                )
            results.append(
                PointResult(
                    failures=result["failures"],
                    trials=result["trials"],
                    faulted_trials=result["faulted_trials"],
                    engine=result["engine"],
                )
            )
        return results

    def _write_checkpoint(
        self,
        shard: Shard,
        results: Sequence[PointResult],
        stats: dict | None = None,
    ) -> None:
        payload = {
            "format": JOB_FORMAT_VERSION,
            "job_id": self.job_id,
            "shard_id": shard.shard_id,
            "points": [
                {
                    "index": index,
                    "key": point_key(self.specs[index], self.policy),
                    "result": {
                        "failures": result.failures,
                        "trials": result.trials,
                        "faulted_trials": result.faulted_trials,
                        "engine": result.engine,
                    },
                }
                for index, result in zip(shard.indices, results)
            ],
        }
        if stats is not None:
            # Observational only (elapsed seconds, simulated/cached
            # split for `status --verbose`): never key material, and
            # absent from checkpoints written by older runs — readers
            # must treat it as optional.
            payload["stats"] = stats
        _write_atomic(self._shard_path(shard), payload)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        workers: int | bool | None = None,
        max_shards: int | None = None,
        on_progress=None,
    ) -> RunReport:
        """Execute every unfinished shard (optionally at most ``max_shards``).

        Completed shards are skipped by checkpoint; within a resumed
        shard, points the store already holds are served, not re-run.
        ``workers`` fans pending shards out to a process pool
        (defaulting to the policy's ``parallel`` setting); every worker
        pre-warms its compile cache with the job's distinct circuits,
        so no worker compiles the same program twice.  ``on_progress``,
        when given, is called after each pending shard finishes with
        ``(done, pending_total, shard_id, elapsed_s)`` — the CLI's
        verbose heartbeat.
        """
        with trace("jobs.run", job=self.job_id) as span:
            return self._run_impl(workers, max_shards, on_progress, span)

    def _run_impl(self, workers, max_shards, on_progress, span) -> RunReport:
        if max_shards is not None and max_shards < 0:
            raise AnalysisError(f"max_shards must be >= 0, got {max_shards}")
        pending: list[Shard] = []
        skipped = 0
        for shard in self.shards:
            if self._load_checkpoint(shard) is None:
                pending.append(shard)
            else:
                skipped += 1
        interrupted = False
        if max_shards is not None and len(pending) > max_shards:
            pending = pending[:max_shards]
            interrupted = True
        _SHARDS_TOTAL.set(len(self.shards))
        _SHARDS_DONE.set(skipped)
        span.set(
            shards=len(self.shards), pending=len(pending), skipped=skipped
        )
        simulated = 0
        cached = 0
        completed = 0
        shard_stats: dict[str, dict] = {}
        # A worker must not open a nested pool: shards are the unit of
        # fan-out, and each shard is already one stacked batch inside.
        shard_policy = replace(self.policy, parallel=None)
        # Store lookups happen in the parent (single reader/writer);
        # workers only ever simulate what the store does not hold.
        caching = CachingExecutor(self.store, policy=shard_policy)
        plan: list[tuple[Shard, list[PointResult | None], list[int]]] = []
        for shard in pending:
            shard_specs = [self.specs[i] for i in shard.indices]
            results: list[PointResult | None] = [None] * len(shard_specs)
            misses: list[int] = []
            for position, spec in enumerate(shard_specs):
                stored = self.store.get(spec, self.policy)
                if stored is None:
                    misses.append(position)
                else:
                    results[position] = stored
                    cached += 1
            plan.append((shard, results, misses))
        to_simulate = [
            (shard, results, misses)
            for shard, results, misses in plan
            if misses
        ]
        pool_width = resolve_workers(
            self.policy.parallel if workers is None else workers,
            len(to_simulate),
        )
        if pool_width:
            circuits = []
            seen = set()
            for shard, _, _ in to_simulate:
                circuit = self.specs[shard.indices[0]].circuit
                key = circuit.content_key()
                if key not in seen:
                    seen.add(key)
                    circuits.append(circuit)
            task = partial(_run_shard_specs, policy=shard_policy)
            with ProcessPoolExecutor(
                max_workers=pool_width,
                initializer=partial(
                    warm_compile_cache, circuits, shard_policy.fuse
                ),
            ) as pool:
                futures = [
                    pool.submit(
                        task,
                        [self.specs[shard.indices[i]] for i in misses],
                    )
                    for shard, _, misses in to_simulate
                ]
                for (shard, results, misses), future in zip(
                    to_simulate, futures
                ):
                    try:
                        computed, elapsed = future.result()
                    except Exception as exc:
                        # Per-future cancel, not shutdown(
                        # cancel_futures=True) — that path can deadlock
                        # the pool when a task fails to pickle
                        # mid-flight (see Executor.run).
                        for pending in futures:
                            pending.cancel()
                        raise JobError(
                            f"shard {shard.shard_id} failed: {exc}"
                        ) from exc
                    simulated += len(misses)
                    for position, result in zip(misses, computed):
                        results[position] = result
                        self.store.put(
                            self.specs[shard.indices[position]],
                            self.policy,
                            result,
                        )
                    completed += 1
                    shard_stats[shard.shard_id] = {
                        "elapsed_s": elapsed,
                        "simulated": len(misses),
                        "cached": len(shard.indices) - len(misses),
                    }
                    _SHARDS_RUN.inc()
                    _SHARDS_DONE.inc()
                    _SHARD_SECONDS.observe(elapsed)
                    if on_progress is not None:
                        on_progress(
                            completed, len(pending), shard.shard_id, elapsed
                        )
        else:
            for shard, results, misses in to_simulate:
                with trace(
                    "jobs.shard",
                    shard=shard.shard_id,
                    points=len(shard.indices),
                    misses=len(misses),
                ):
                    watch = stopwatch()
                    computed = caching.run(
                        [self.specs[shard.indices[i]] for i in misses]
                    )
                    elapsed = watch.elapsed_s
                simulated += len(misses)
                for position, result in zip(misses, computed):
                    results[position] = result
                completed += 1
                shard_stats[shard.shard_id] = {
                    "elapsed_s": elapsed,
                    "simulated": len(misses),
                    "cached": len(shard.indices) - len(misses),
                }
                _SHARDS_RUN.inc()
                _SHARDS_DONE.inc()
                _SHARD_SECONDS.observe(elapsed)
                if on_progress is not None:
                    on_progress(
                        completed, len(pending), shard.shard_id, elapsed
                    )
        # Checkpoints are written only once every point of the shard is
        # in hand — a crash between store puts and here re-runs nothing
        # but the shard's bookkeeping.
        for shard, results, misses in plan:
            stats = shard_stats.get(shard.shard_id)
            if stats is None:
                # The whole shard was served from the store: no compute
                # happened, but the shard still completes this run.
                stats = {
                    "elapsed_s": 0.0,
                    "simulated": 0,
                    "cached": len(shard.indices),
                }
                completed += 1
                _SHARDS_DONE.inc()
                if on_progress is not None:
                    on_progress(completed, len(pending), shard.shard_id, 0.0)
            self._write_checkpoint(shard, results, stats)  # type: ignore[arg-type]
        span.set(simulated=simulated, cached=cached)
        return RunReport(
            shards_run=len(plan),
            shards_skipped=skipped,
            simulated_points=simulated,
            cached_points=cached,
            interrupted=interrupted,
        )

    # ------------------------------------------------------------------
    # Inspection and merge
    # ------------------------------------------------------------------

    def status(self) -> JobStatus:
        """Shard/point completion counts from the checkpoints on disk."""
        done = 0
        points_done = 0
        for shard in self.shards:
            if self._load_checkpoint(shard) is not None:
                done += 1
                points_done += len(shard)
        return JobStatus(
            job_id=self.job_id,
            shards_total=len(self.shards),
            shards_done=done,
            points_total=len(self.specs),
            points_done=points_done,
        )

    def shard_stats(self) -> list[dict]:
        """Per-shard progress rows for verbose status output.

        One dict per planned shard — ``shard_id``, ``points``,
        ``done``, and (for checkpoints that recorded a stats block)
        ``elapsed_s``/``simulated``/``cached``.  Checkpoints written
        before stats existed report ``None`` for those three; the
        fields are observational and never affect results or keys.
        """
        rows: list[dict] = []
        for shard in self.shards:
            done = self._load_checkpoint(shard) is not None
            stats: dict = {}
            if done:
                try:
                    stats = (
                        json.loads(self._shard_path(shard).read_text()).get(
                            "stats"
                        )
                        or {}
                    )
                except (OSError, json.JSONDecodeError):
                    stats = {}
            rows.append(
                {
                    "shard_id": shard.shard_id,
                    "points": len(shard),
                    "done": done,
                    "elapsed_s": stats.get("elapsed_s"),
                    "simulated": stats.get("simulated"),
                    "cached": stats.get("cached"),
                }
            )
        return rows

    def collect(self) -> list[PointResult]:
        """Merge every shard checkpoint into spec-order results.

        Raises :class:`~repro.errors.AnalysisError` when nothing has
        completed (an empty store has nothing to merge — the classic
        way to get here is collecting before running) or when shards
        are still missing; a partial merge would silently misrepresent
        the sweep.
        """
        with trace("jobs.collect", job=self.job_id) as span:
            results = self._collect_impl()
            span.set(points=len(results), shards=len(self.shards))
        return results

    def _collect_impl(self) -> list[PointResult]:
        results: list[PointResult | None] = [None] * len(self.specs)
        missing = []
        done = 0
        for shard in self.shards:
            checkpoint = self._load_checkpoint(shard)
            if checkpoint is None:
                missing.append(shard.shard_id)
                continue
            done += 1
            for index, result in zip(shard.indices, checkpoint):
                results[index] = result
        if done == 0:
            raise AnalysisError(
                f"job {self.job_id} has no completed shards to collect — "
                f"the result store is empty for this sweep; run the job "
                f"first"
            )
        if missing:
            raise AnalysisError(
                f"job {self.job_id} is incomplete: {len(missing)} of "
                f"{len(self.shards)} shards still pending "
                f"({', '.join(missing[:4])}{'...' if len(missing) > 4 else ''}); "
                f"resume with run() before collecting"
            )
        return results  # type: ignore[return-value]

    def collect_rows(self) -> list[tuple[RunSpec, PointResult, RateEstimate]]:
        """The merged sweep with Wilson statistics, in spec order."""
        return [
            (
                spec,
                result,
                RateEstimate(failures=result.failures, trials=result.trials),
            )
            for spec, result in zip(self.specs, self.collect())
        ]
