"""A store-backed executor: cache hits skip simulation entirely.

:class:`CachingExecutor` wraps the plain
:class:`~repro.runtime.Executor` behind the same ``run(specs) ->
list[PointResult]`` surface, so anything built on an executor — the
harness sweeps, the stacked threshold search, the shard runner — gains
a durable cache by swapping the object, not the code.

Lookup is per point: stored points come back without touching an
engine, missing points run through the inner executor in ONE batch
(preserving its cross-point stacking) and are written back.  Because
the store key captures everything result-affecting, a cached answer is
*the* answer — bit-identical to recomputation — and because points
with no reproducible identity (``None`` or generator seeds) have no
key, they transparently bypass the store instead of poisoning it.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.jobs.store import ResultStore
from repro.obs import counter
from repro.runtime.spec import ExecutionPolicy, PointResult, RunSpec
from repro.runtime.executor import Executor

__all__ = ["CachingExecutor"]

# Process-wide split between simulated and store-served points, across
# every CachingExecutor (the per-instance ints stay authoritative for
# "what did this executor do" assertions).
_SIMULATED = counter("jobs.cache.simulated_points")
_SERVED = counter("jobs.cache.served_points")


class CachingExecutor:
    """Executor-shaped wrapper that consults a :class:`ResultStore`.

    Attributes:
        policy: the wrapped executor's policy (exposed because callers
            of the plain executor read it).
        simulated_points: points this instance actually ran.
        cached_points: points served from the store.
    """

    def __init__(
        self,
        store: ResultStore,
        policy: ExecutionPolicy | None = None,
        executor: Executor | None = None,
    ):
        self.store = store
        self.executor = executor if executor is not None else Executor(policy)
        self.policy = self.executor.policy
        self.simulated_points = 0
        self.cached_points = 0

    def run(self, specs: Sequence[RunSpec]) -> list[PointResult]:
        """Evaluate every spec, serving stored points from the store.

        Results come back in spec order, exactly as the plain executor
        returns them; the split between served and simulated is
        visible only in the counters.
        """
        specs = list(specs)
        results: list[PointResult | None] = [None] * len(specs)
        pending: list[int] = []
        for index, spec in enumerate(specs):
            if not isinstance(spec.seed, int):
                # No reproducible identity -> no store key; always run.
                pending.append(index)
                continue
            stored = self.store.get(spec, self.policy)
            if stored is None:
                pending.append(index)
            else:
                results[index] = stored
        if pending:
            computed = self.executor.run([specs[i] for i in pending])
            self.simulated_points += len(pending)
            _SIMULATED.inc(len(pending))
            for index, result in zip(pending, computed):
                results[index] = result
                if isinstance(specs[index].seed, int):
                    self.store.put(specs[index], self.policy, result)
        self.cached_points += len(specs) - len(pending)
        _SERVED.inc(len(specs) - len(pending))
        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec) -> PointResult:
        """Evaluate a single spec (sugar over :meth:`run`)."""
        return self.run([spec])[0]
