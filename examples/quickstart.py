"""Quickstart: the reversible MAJ gate and the Figure-2 recovery circuit.

Run with::

    python examples/quickstart.py

Reproduces Table 1, builds Figure 1 from CNOTs and a Toffoli, and shows
the nine-bit error-recovery circuit correcting a corrupted codeword —
first cleanly, then with a deliberately injected fault.
"""

from __future__ import annotations

from repro.core import MAJ, Circuit, circuit_gate, draw, format_truth_table, run
from repro.coding import OUTPUT_WIRES, recovery_circuit
from repro.noise import Fault, run_with_faults


def main() -> None:
    print("=== Table 1: the reversible MAJ gate ===")
    print(format_truth_table(MAJ))
    print()

    print("=== Figure 1: MAJ from two CNOTs and a Toffoli ===")
    construction = Circuit(3, name="fig1").cnot(0, 1).cnot(0, 2).toffoli(1, 2, 0)
    print(draw(construction))
    built = circuit_gate(construction, "fig1-composite")
    print(f"construction equals MAJ: {built.same_action(MAJ)}")
    print()

    print("=== Figure 2: error recovery on the 3-bit repetition code ===")
    circuit = recovery_circuit()
    print(draw(circuit))
    print()

    corrupted = (1, 0, 1)  # logical 1 with the middle bit flipped
    output = run(circuit, corrupted + (0,) * 6)
    recovered = tuple(output[w] for w in OUTPUT_WIRES)
    print(f"input codeword  : {corrupted} (logical 1 with one error)")
    print(f"recovered       : {recovered}")
    print()

    print("=== Fault tolerance: corrupt an internal gate ===")
    # Replace the first decode MAJ's output with garbage (op index 5).
    fault = Fault(op_index=5, pattern=(0, 1, 0))
    output = run_with_faults(circuit, (1, 1, 1) + (0,) * 6, [fault])
    recovered = tuple(output[w] for w in OUTPUT_WIRES)
    errors = sum(1 for bit in recovered if bit != 1)
    print(f"clean input 111, faulty decode gate -> output {recovered}")
    print(f"output errors: {errors} (a single fault never causes more than 1)")


if __name__ == "__main__":
    main()
