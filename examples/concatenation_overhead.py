"""Concatenation overhead planning (Section 2.3).

Run with::

    python examples/concatenation_overhead.py

For a range of target module sizes ``T``, chooses the minimum
concatenation depth and reports the gate and bit blow-ups — including
the paper's worked example (g = rho/10, T = 10^6 -> level 2, 441 gates
per gate, 81 bits per bit) — then compiles actual circuits and checks
the census against the closed form.
"""

from __future__ import annotations

from repro.analysis import (
    gate_overhead_exponent,
    plan_module,
    threshold,
    unprotected_module_limit,
)
from repro.coding import concatenated_gate_circuit, gamma_census
from repro.core import MAJ
from repro.harness import format_table


def main() -> None:
    operation_count = 9
    rho = threshold(operation_count)
    gate_error = rho / 10.0

    print(f"scheme G = {operation_count}, rho = 1/108 = {rho:.5f}")
    print(f"gate error g = rho/10 = {gate_error:.2e}")
    print(
        f"unprotected limit at this g: ~{unprotected_module_limit(gate_error):.0f} gates\n"
    )

    rows = []
    for exponent in (3, 6, 9, 12):
        module_gates = 10**exponent
        report = plan_module(gate_error, operation_count, module_gates)
        rows.append(
            (
                f"10^{exponent}",
                report.level,
                report.gate_factor,
                report.bit_factor,
                f"{report.total_gates:.2e}",
            )
        )
    print(
        format_table(
            ("target T", "level L", "gates/gate", "bits/bit", "total gates"),
            rows,
            title="Minimum concatenation depth per module size",
        )
    )
    print(
        f"\ngate overhead is O((log T)^{gate_overhead_exponent(11):.2f}) "
        "for G = 11 — poly-log, as the paper says.\n"
    )

    print("Compiled-circuit census vs the closed form (E = 6 accounting):")
    for level in (1, 2):
        circuit, _ = concatenated_gate_circuit(MAJ, level)
        census = gamma_census(circuit)
        print(
            f"  level {level}: compiled {census['gates']} gates "
            f"(closed form {21 ** level}), {census['resets']} resets, "
            f"{circuit.n_wires // 3} wires per logical bit"
        )


if __name__ == "__main__":
    main()
