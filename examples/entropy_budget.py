"""Entropy and heat budgets for noisy reversible computing (Section 4).

Run with::

    python examples/entropy_budget.py

Prints the paper's entropy sandwich ``g(3E)^{L-1} <= H_L <= G^L k sqrt(g)``
across error rates and concatenation depths, the depth limit for O(1)
entropy per gate, the Landauer heat equivalent, a Monte-Carlo
measurement of the entropy actually carried by discarded ancillas, and
the optimal 3/2-bit NAND realisation found by exhaustive search.
"""

from __future__ import annotations

from repro.analysis import (
    KAPPA,
    entropy_lower_bound,
    entropy_upper_bound,
    landauer_heat_joules,
    max_level_for_constant_entropy,
    min_nand_cost,
    search_all_gates,
    single_gate_entropy,
)
from repro.analysis.entropy import empirical_entropy_from_columns
from repro.coding import RecoveryLayout, recovery_circuit
from repro.core import MAJ_INV, TOFFOLI
from repro.harness import format_table
from repro.noise import NoiseModel, NoisyRunner

RECOVERY_OPS = 11  # E with initialisation at G = 11 accounting
GATES_PER_LEVEL = 3 * RECOVERY_OPS


def main() -> None:
    print(f"kappa = 2 sqrt(7/8) + (7/8) log2 7 = {KAPPA:.4f}\n")

    rows = []
    for g in (1e-4, 1e-3, 1e-2):
        for level in (1, 2, 3):
            rows.append(
                (
                    f"{g:.0e}",
                    level,
                    f"{entropy_lower_bound(g, RECOVERY_OPS, level):.3g}",
                    f"{entropy_upper_bound(g, GATES_PER_LEVEL, level):.3g}",
                )
            )
    print(
        format_table(
            ("g", "level L", "lower bits/gate", "upper bits/gate"),
            rows,
            title="Entropy per level-L gate (Section 4 sandwich)",
        )
    )
    print()

    print("Depth limit for O(1) bits of entropy per gate:")
    for g in (1e-2, 1e-4, 1e-6):
        limit = max_level_for_constant_entropy(g, RECOVERY_OPS)
        print(f"  g = {g:.0e}: L <= {limit:.2f}")
    print("  (the paper's example: g = 1e-2, E = 11 -> L <= 2.3)\n")

    bits = entropy_upper_bound(1e-2, GATES_PER_LEVEL, 2)
    joules = landauer_heat_joules(bits, temperature_kelvin=300.0)
    print(
        f"Landauer heat for {bits:.1f} bits at 300 K: {joules:.3e} J per gate\n"
    )

    print("Monte-Carlo: entropy of the discarded recovery ancillas")
    g = 1e-2
    circuit = recovery_circuit()
    runner = NoisyRunner(NoiseModel(gate_error=g), seed=3)
    result = runner.run_from_input(circuit, (1, 1, 1) + (0,) * 6, trials=200000)
    discarded = [
        w for w in range(9) if w not in RecoveryLayout.standard().advance().data
    ]
    measured = empirical_entropy_from_columns(result.states.columns(discarded))
    print(f"  measured at g = {g}: {measured:.4f} bits per cycle")
    print(f"  bounds: [{g:.3g}, {8 * single_gate_entropy(g):.3g}]\n")

    print("NAND from reversible gates (footnote 4):")
    print(f"  MAJ^-1 cost : {min_nand_cost(MAJ_INV)} bits")
    print(f"  Toffoli cost: {min_nand_cost(TOFFOLI)} bits")
    result = search_all_gates()
    print(
        f"  exhaustive search over {result.total_gates_searched} gates: "
        f"minimum = {result.minimum_entropy} bits "
        f"({result.achieving_gates} gates achieve it)"
    )


if __name__ == "__main__":
    main()
