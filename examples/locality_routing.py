"""Near-neighbour fault tolerance: the 1D and 2D constructions.

Run with::

    python examples/locality_routing.py

Walks through Section 3: the Figure-4 tile on which recovery is
already local, the interleaving schedules and their swap counts, and
the fully 1D Figure-7 recovery circuit with its SWAP3-packed routing
network — ending with the operation counts that set each scheme's
threshold.
"""

from __future__ import annotations

from repro.analysis import threshold
from repro.core import Circuit, draw
from repro.harness import format_table
from repro.local import (
    FIG4_TILE,
    circuit_is_local,
    interleave_1d_schedule,
    one_d_cycle_operation_count,
    one_d_lattice,
    one_d_recovery_circuit,
    one_d_routing_ops,
    parallel_2d_schedule,
    perpendicular_2d_schedule,
    two_d_lattice,
    two_d_recovery_circuit,
)


def main() -> None:
    print("=== Figure 4: the 3x3 tile ===")
    for row in FIG4_TILE:
        print("   " + "  ".join(f"q{label}" for label in row))
    circuit, tracker = two_d_recovery_circuit(cycles=2)
    print(f"\nrecovery over 2 cycles local on the tile: "
          f"{circuit_is_local(circuit, two_d_lattice())}")
    print(f"codeword after 2 cycles on wires: {tracker.data_wires()}")
    print()

    print("=== Interleaving costs (Figures 4 and 6) ===")
    _, parallel = parallel_2d_schedule()
    _, perpendicular = perpendicular_2d_schedule()
    _, one_d = interleave_1d_schedule()
    rows = [
        ("2D parallel", parallel.total_swaps, parallel.max_swaps_per_codeword,
         parallel.max_swap3_per_codeword),
        ("2D perpendicular", perpendicular.total_swaps,
         perpendicular.max_swaps_per_codeword, perpendicular.max_swap3_per_codeword),
        ("1D (Figure 6)", one_d.total_swaps, one_d.max_swaps_per_codeword,
         one_d.max_swap3_per_codeword),
    ]
    print(format_table(
        ("scheme", "total SWAPs", "max/codeword", "SWAP3/codeword"), rows
    ))
    print(f"\n1D move breakdown: b0 = {one_d.move_breakdown[0]} (8+7+6), "
          f"b2 = {one_d.move_breakdown[2]} (10+8+6)")
    print()

    print("=== Figure 7: the fully 1D recovery circuit ===")
    circuit = one_d_recovery_circuit(1)
    labels = ["q0", "q3", "q6", "q1", "q4", "q7", "q2", "q5", "q8"]
    print(draw(circuit, labels=labels))
    print(f"\nlocal on a 9-site line: {circuit_is_local(circuit, one_d_lattice())}")
    routing = one_d_routing_ops()
    print("routing network:", ", ".join(f"{op.kind}{op.wires}" for op in routing))
    print()

    print("=== Operation counts and thresholds ===")
    rows = [
        ("non-local", 11, f"1/{round(1 / threshold(11))}"),
        ("2D local (paper's count)", 16, f"1/{round(1 / threshold(16))}"),
        ("1D local", one_d_cycle_operation_count(True), f"1/{round(1 / threshold(40))}"),
    ]
    print(format_table(("scheme", "ops per codeword G", "threshold"), rows))


if __name__ == "__main__":
    main()
