"""Sweep the physical error rate and locate the pseudo-threshold.

Run with::

    python examples/threshold_sweep.py [trials]

Measures the logical error per gate-plus-recovery cycle of the level-1
scheme across a geometric grid of gate error rates, compares it with
the Eq.-1 analytic bound ``3 C(11,2) g^2``, and bisects for the
pseudo-threshold (the crossing ``g_logical = g``).  The analytic
threshold 1/165 is a lower bound; the measured crossing lands above it.
"""

from __future__ import annotations

import sys

from repro.analysis import logical_error_bound, threshold
from repro.harness import (
    find_pseudo_threshold,
    format_table,
    geometric_grid,
    logical_error_per_cycle,
)


def main(trials: int = 40000) -> None:
    print(f"analytic threshold (G=11): rho = 1/165 = {threshold(11):.5f}")
    print()

    rows = []
    for g in geometric_grid(1e-3, 6e-2, 7):
        measured, failures = logical_error_per_cycle(g, trials, seed=13)
        bound = logical_error_bound(g, 11)
        rows.append(
            (
                f"{g:.2e}",
                f"{measured:.2e}",
                f"{bound:.2e}",
                "better" if measured < g else "worse",
            )
        )
    print(
        format_table(
            ("gate error g", "measured g_logical", "Eq.1 bound", "vs bare gate"),
            rows,
            title=f"Logical error per cycle ({trials} trials per point)",
        )
    )
    print()

    result = find_pseudo_threshold(
        lambda g: logical_error_per_cycle(g, trials, seed=13)[0],
        lower=2e-3,
        upper=8e-2,
        iterations=10,
    )
    print(f"measured pseudo-threshold: {result.estimate:.4f}")
    print(f"analytic lower bound     : {threshold(11):.4f}")
    print(
        "consistent with Section 5: the paper's thresholds are an "
        "existence proof, not an optimum."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40000)
