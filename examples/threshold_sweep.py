"""Sweep the physical error rate and locate the pseudo-threshold.

Run with::

    python examples/threshold_sweep.py [trials] [workers]

Measures the logical error per gate-plus-recovery cycle of the level-1
scheme across a geometric grid of gate error rates (optionally on a
``workers``-process pool — each point owns a spawned child seed, so the
parallel numbers equal the serial ones), compares it with the Eq.-1
analytic bound ``3 C(11,2) g^2``, and runs the budget-aware bisection
for the pseudo-threshold (the crossing ``g_logical = g``).  The
analytic threshold 1/165 is a lower bound; the measured crossing lands
above it.
"""

from __future__ import annotations

import sys
from functools import partial

from repro.analysis import logical_error_bound, threshold
from repro.harness import (
    find_pseudo_threshold_adaptive,
    format_table,
    geometric_grid,
    logical_error_per_cycle,
    spawn_seeds,
    sweep,
)


def sweep_point(point: tuple[float, int], trials: int) -> float:
    """Logical error at one (gate error, seed) grid point."""
    gate_error, seed = point
    rate, _ = logical_error_per_cycle(gate_error, trials, seed=seed)
    return rate


def bisection_point(gate_error: float, n_trials: int, seed: int):
    """Adaptive-bisection evaluator (picklable for parallel brackets)."""
    return logical_error_per_cycle(gate_error, n_trials, seed=seed)


def main(trials: int = 40000, workers: int = 0) -> None:
    print(f"analytic threshold (G=11): rho = 1/165 = {threshold(11):.5f}")
    print()

    grid = geometric_grid(1e-3, 6e-2, 7)
    points = list(zip(grid, spawn_seeds(13, len(grid))))
    measured = sweep(
        partial(sweep_point, trials=trials),
        points,
        parameter="(g, seed)",
        parallel=workers,
    )
    rows = []
    for (g, _), rate in measured.rows():
        bound = logical_error_bound(g, 11)
        rows.append(
            (
                f"{g:.2e}",
                f"{rate:.2e}",
                f"{bound:.2e}",
                "better" if rate < g else "worse",
            )
        )
    print(
        format_table(
            ("gate error g", "measured g_logical", "Eq.1 bound", "vs bare gate"),
            rows,
            title=f"Logical error per cycle ({trials} trials per point)",
        )
    )
    print()

    result = find_pseudo_threshold_adaptive(
        bisection_point,
        lower=2e-3,
        upper=8e-2,
        trials=trials,
        iterations=10,
        seed=13,
        parallel=workers,
    )
    print(f"measured pseudo-threshold: {result.estimate:.4f}")
    print(f"analytic lower bound     : {threshold(11):.4f}")
    print(
        f"({result.evaluations} evaluations, {result.trials_spent} trials"
        + (
            ", stopped at the budget's statistical resolution)"
            if result.resolution_limited
            else ")"
        )
    )
    print(
        "consistent with Section 5: the paper's thresholds are an "
        "existence proof, not an optimum."
    )


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 40000,
        int(sys.argv[2]) if len(sys.argv) > 2 else 0,
    )
