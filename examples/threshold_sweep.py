"""Sweep the physical error rate and locate the pseudo-threshold.

Run with::

    python examples/threshold_sweep.py [trials]

Measures the logical error per gate-plus-recovery cycle of the level-1
scheme across a geometric grid of gate error rates, compares it with
the Eq.-1 analytic bound ``3 C(11,2) g^2``, and runs the budget-aware
bisection for the pseudo-threshold (the crossing ``g_logical = g``).

The grid goes through the declarative runtime layer: all points share
the compiled cycle circuit, so ``measure_cycle_errors`` batches them
into ONE stacked bitplane run (each point still owns its spawned child
seed, and its numbers are bit-identical to measuring it alone —
batching is an execution detail, not a statistical one), and the
bisection itself runs as stacked rounds through its ``spec_builder``
form — no process pool needed.  The analytic threshold 1/165 is a
lower bound; the measured crossing lands above it.
"""

from __future__ import annotations

import sys

from repro.analysis import logical_error_bound, threshold
from repro.harness import (
    cycle_stage_spec,
    find_pseudo_threshold_adaptive,
    format_table,
    geometric_grid,
    measure_cycle_errors,
    spawn_seeds,
)


def main(trials: int = 40000) -> None:
    print(f"analytic threshold (G=11): rho = 1/165 = {threshold(11):.5f}")
    print()

    # One executor group (all points share the cycle circuit), so the
    # whole grid is one stacked run.
    grid = geometric_grid(1e-3, 6e-2, 7)
    points = list(zip(grid, spawn_seeds(13, len(grid))))
    measured = measure_cycle_errors(points, trials)
    rows = []
    for g, (rate, _) in zip(grid, measured):
        bound = logical_error_bound(g, 11)
        rows.append(
            (
                f"{g:.2e}",
                f"{rate:.2e}",
                f"{bound:.2e}",
                "better" if rate < g else "worse",
            )
        )
    print(
        format_table(
            ("gate error g", "measured g_logical", "Eq.1 bound", "vs bare gate"),
            rows,
            title=(
                f"Logical error per cycle ({trials} trials per point, "
                "one stacked run)"
            ),
        )
    )
    print()

    # The spec-builder form runs the bisection as STACKED rounds on the
    # runtime layer: bracket endpoints plus the speculative first
    # midpoint share one plane array, and each round batches its
    # pending escalation stage with the two next possible midpoints —
    # a handful of stacked executions, bit-identical to evaluating the
    # stages one solo run at a time.
    result = find_pseudo_threshold_adaptive(
        lower=2e-3,
        upper=8e-2,
        trials=trials,
        iterations=10,
        seed=13,
        spec_builder=cycle_stage_spec,
    )
    print(f"measured pseudo-threshold: {result.estimate:.4f}")
    print(f"analytic lower bound     : {threshold(11):.4f}")
    print(
        f"({result.evaluations} evaluations, {result.trials_spent} trials"
        + (
            ", stopped at the budget's statistical resolution)"
            if result.resolution_limited
            else ")"
        )
    )
    print(
        "consistent with Section 5: the paper's thresholds are an "
        "existence proof, not an optimum."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40000)
