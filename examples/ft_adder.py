"""Fault-tolerant ripple-carry addition on repetition-coded data.

Run with::

    python examples/ft_adder.py [trials]

Builds the Cuccaro MAJ/UMA ripple-carry adder (the application the
paper's footnote 2 points at) from this library's own ``MAJ`` gate,
then runs it two ways under the paper's noise model:

* bare — every gate acts on raw bits;
* fault-tolerant — every logical bit is a 3-bit repetition codeword
  and each transversal gate is followed by a Figure-2 recovery cycle.

Below threshold, the coded adder returns the right sum far more often.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.coding import LogicalProcessor
from repro.core import MAJ, Circuit, CNOT, Gate, run
from repro.harness import format_table
from repro.noise import NoiseModel, NoisyRunner


def _uma_action(bits):
    x, y, z = bits
    z ^= x & y
    x ^= z
    y ^= x
    return (x, y, z)


UMA = Gate.from_function("UMA", 3, _uma_action)
N_BITS = 2


def adder_gates():
    """Gate list over the register [c0, b0, a0, b1, a1, z]."""
    def a(i):
        return 2 + 2 * i

    def b(i):
        return 1 + 2 * i

    gates = []
    carry = 0
    for i in range(N_BITS):
        gates.append((MAJ, (a(i), b(i), carry)))
        carry = a(i)
    gates.append((CNOT, (a(N_BITS - 1), 1 + 2 * N_BITS)))
    for i in reversed(range(N_BITS)):
        gates.append(((UMA), (0 if i == 0 else a(i - 1), b(i), a(i))))
    return gates


def register_for(a_value: int, b_value: int):
    register = [0] * (2 + 2 * N_BITS)
    for i in range(N_BITS):
        register[1 + 2 * i] = (b_value >> i) & 1
        register[2 + 2 * i] = (a_value >> i) & 1
    return tuple(register)


def sums_from(decoded: np.ndarray) -> np.ndarray:
    totals = np.zeros(decoded.shape[0], dtype=np.int64)
    for i in range(N_BITS):
        totals |= decoded[:, 1 + 2 * i].astype(np.int64) << i
    totals |= decoded[:, 1 + 2 * N_BITS].astype(np.int64) << N_BITS
    return totals


def main(trials: int = 5000) -> None:
    gates = adder_gates()
    a_value, b_value = 3, 2

    print("=== Noiseless check, all 2-bit operand pairs ===")
    for av in range(4):
        for bv in range(4):
            processor = LogicalProcessor(2 + 2 * N_BITS)
            for gate, operands in gates:
                processor.apply(gate, *operands)
            output = run(
                processor.circuit, processor.physical_input(register_for(av, bv))
            )
            decoded = processor.decode_output(output)
            total = sums_from(np.asarray([decoded]))[0]
            assert total == av + bv, (av, bv, total)
    print("all 16 sums correct on coded data\n")

    rows = []
    for gate_error in (1e-3, 3e-3, 1e-2):
        processor = LogicalProcessor(2 + 2 * N_BITS)
        for gate, operands in gates:
            processor.apply(gate, *operands)
        physical = processor.physical_input(register_for(a_value, b_value))
        runner = NoisyRunner(NoiseModel(gate_error=gate_error), seed=7)
        result = runner.run_from_input(processor.circuit, physical, trials)
        ft_sums = sums_from(processor.decode_batch(result.states))
        ft_failures = float((ft_sums != a_value + b_value).mean())

        bare = Circuit(2 + 2 * N_BITS)
        for gate, wires in gates:
            bare.append_gate(gate, *wires)
        runner = NoisyRunner(NoiseModel(gate_error=gate_error), seed=8)
        bare_result = runner.run_from_input(
            bare, register_for(a_value, b_value), trials
        )
        bare_sums = sums_from(bare_result.states.array)
        bare_failures = float((bare_sums != a_value + b_value).mean())
        rows.append(
            (
                f"{gate_error:.0e}",
                f"{bare_failures:.4f}",
                f"{ft_failures:.4f}",
                f"{bare_failures / ft_failures:.1f}x" if ft_failures else "inf",
            )
        )

    print(
        format_table(
            ("gate error", "bare adder fails", "FT adder fails", "advantage"),
            rows,
            title=f"{a_value} + {b_value} under noise ({trials} trials)",
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5000)
