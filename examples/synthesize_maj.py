"""Synthesis walkthrough: rediscover Figure 1, mine identities, optimise.

Run with::

    PYTHONPATH=src python examples/synthesize_maj.py

Three acts:

1. `find_optimal` rediscovers the paper's constructions from scratch —
   MAJ out of the CNOT/Toffoli basis (Figure 1) and the SWAP3 rotation
   out of plain SWAPs (Figure 5) — at provably minimal gate count;
2. the searcher mines an identity database over the recovery-circuit
   gate set (equivalence classes of circuits with the same exhaustive
   action);
3. `optimize` strips a deliberately redundant recovery circuit back to
   the hand-written Figure-2 original, counting fault locations as it
   goes — every rewrite verified by exhaustion before it is applied.

``REPRO_SYNTH_DEPTH`` caps the search depth (CI smoke uses 3).
"""

from __future__ import annotations

from repro.coding import recovery_circuit
from repro.core import CNOT, MAJ, MAJ_INV, SWAP, SWAP3_UP, TOFFOLI, circuit_gate, draw
from repro.synth import (
    IdentityDatabase,
    find_optimal,
    inflate,
    optimize_report,
    search_depth_budget,
)


def main() -> None:
    budget = max(search_depth_budget(4), 3)

    print("=== Figure 1, rediscovered: MAJ over {CNOT, TOFFOLI} ===")
    result = find_optimal(MAJ, (CNOT, TOFFOLI), max_gates=budget)
    print(draw(result.circuit))
    print(
        f"gates: {result.gate_count} (provably minimal), "
        f"states explored: {result.states_explored}, "
        f"matches MAJ: {circuit_gate(result.circuit, 'synth').same_action(MAJ)}"
    )
    print()

    print("=== Figure 5, rediscovered: SWAP3 over {SWAP} ===")
    rotation = find_optimal(SWAP3_UP, (SWAP,), max_gates=budget)
    print(draw(rotation.circuit))
    print(f"gates: {rotation.gate_count} (provably minimal)")
    print()

    print("=== Identity mining over the recovery gate set ===")
    database = IdentityDatabase(3)
    added = database.mine((CNOT, TOFFOLI, MAJ, MAJ_INV), max_gates=2)
    rewrite_classes = sum(
        1 for members in database.classes.values() if len(members) > 1
    )
    print(
        f"mined {added} circuits into {len(database)} equivalence classes; "
        f"{rewrite_classes} classes hold more than one circuit (rewrite rules)"
    )
    print()

    print("=== Peephole optimisation of a redundant recovery circuit ===")
    original = recovery_circuit()
    redundant = inflate(original)
    report = optimize_report(redundant, database=database)
    before, after = report.locations_before, report.locations_after
    print(
        f"fault locations: {before['total']} -> {after['total']} "
        f"({report.locations_removed_fraction:.0%} removed; "
        f"{before['gates']}->{after['gates']} gate-class, "
        f"{before['resets']}->{after['resets']} reset-class)"
    )
    print(
        f"rewrites: {report.cancellations} cancellations + "
        f"{report.identity_removals} identity removals + "
        f"{report.database_rewrites} database splices, "
        f"all {report.verified_rewrites} verified by exhaustion"
    )
    print(
        "optimised circuit equals the hand-written Figure 2 op for op: "
        f"{report.circuit.ops == original.ops}"
    )


if __name__ == "__main__":
    main()
