"""Bench: Figure 7 — the fully 1D local recovery circuit."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig7_1d_recovery(benchmark, record):
    result = run_once(benchmark, lambda: run_experiment("fig7"))
    record(result)
