"""Ablation: logical-memory lifetime below and above threshold.

Stores a logical bit through repeated recovery cycles and measures the
survival fraction.  Below threshold the per-cycle loss is ~ c2 g^2, so
the lifetime stretches quadratically as g falls; above threshold the
memory collapses within a few cycles — the operational meaning of the
threshold.
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.coding.recovery import repeated_recovery
from repro.harness.experiments import trial_budget
from repro.harness.tables import format_table
from repro.noise.model import NoiseModel
from repro.noise.monte_carlo import NoisyRunner

CYCLES = 25


def _survival(gate_error: float, trials: int, seed: int) -> float:
    circuit, layout = repeated_recovery(CYCLES)
    runner = NoisyRunner(NoiseModel(gate_error=gate_error), seed=seed)
    result = runner.run_from_input(circuit, (1, 1, 1) + (0,) * 6, trials)
    return float((result.states.majority_of(layout.data) == 1).mean())


def test_ablation_storage_lifetime(benchmark):
    trials = min(trial_budget(), 20000)
    error_rates = (1e-3, 5e-3, 2e-2, 1e-1)

    def sweep():
        return [
            _survival(g, trials, seed=100 + i)
            for i, g in enumerate(error_rates)
        ]

    survivals = run_once(benchmark, sweep)
    rows = [
        (f"{g:.0e}", f"{survival:.4f}")
        for g, survival in zip(error_rates, survivals)
    ]
    text = format_table(
        ("gate error g", f"survival after {CYCLES} cycles"),
        rows,
        title=f"Logical memory lifetime ({trials} trials)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation-storage-lifetime.txt").write_text(text + "\n")
    print()
    print(text)

    # Survival is monotone in g and collapses far above threshold.
    assert all(a >= b for a, b in zip(survivals, survivals[1:]))
    assert survivals[0] > 0.999
    assert survivals[-1] < 0.75
