"""Perf rows and acceptance floor: fused backend vs the numpy backend.

The fused backend compiles each slot schedule into a chain of prebuilt
kernels (shared-subexpression extraction, preallocated scratch, one
traversal per slot) instead of interpreting plane programs
term-by-term.  The workload here is apply-dominated — three noiseless
Figure-2 recovery cycles over a 100k-trial batch — because that is
what the backend seam accelerates; noisy runs spend most of their time
in fault bookkeeping that is identical across backends.

Acceptance: fused must be bit-identical to numpy and at least 1.3x
faster (override with ``REPRO_BACKEND_SPEEDUP_FLOOR`` for shared CI
runners; measured headroom is ~2x on an idle machine).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.backends import get_backend
from repro.coding import recovery_circuit
from repro.core.compiled import compile_circuit

TRIALS = 100_000
RECOVERY_INPUT = (1, 1, 1) + (0,) * 6
CYCLES = 3


def _cycle_circuit():
    circuit = recovery_circuit()
    for _ in range(CYCLES - 1):
        circuit = circuit + recovery_circuit()
    return circuit


def _run_backend(name, compiled):
    backend = get_backend(name)
    prepared = backend.prepare(compiled)
    state = backend.broadcast(RECOVERY_INPUT, TRIALS)
    prepared.run(state)
    return state


def test_perf_backend_numpy_recovery_cycles(benchmark):
    compiled = compile_circuit(_cycle_circuit())
    state = benchmark(lambda: _run_backend("numpy", compiled))
    assert int(state.column(0).sum(dtype=np.int64)) == TRIALS


def test_perf_backend_fused_recovery_cycles(benchmark):
    compiled = compile_circuit(_cycle_circuit())
    state = benchmark(lambda: _run_backend("fused", compiled))
    assert int(state.column(0).sum(dtype=np.int64)) == TRIALS


def _interleaved_best_seconds(functions, rounds: int = 10) -> list[float]:
    """Best-of-``rounds`` for each function, rounds interleaved.

    Alternating the contenders inside every round means slow machine
    phases (frequency scaling, a noisy CI neighbour) hit both timings
    instead of skewing the ratio.
    """
    for function in functions:  # warm-up: prepare caches, scratch pools
        function()
    best = [float("inf")] * len(functions)
    for _ in range(rounds):
        for index, function in enumerate(functions):
            start = time.perf_counter()
            function()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def test_fused_backend_speedup_over_numpy():
    """Acceptance: fused >= 1.3x numpy on 3 recovery cycles, 100k trials.

    Bit-identity is asserted on the same workload before timing, so a
    fused backend can never buy speed with divergent planes.
    """
    floor = float(os.environ.get("REPRO_BACKEND_SPEEDUP_FLOOR", "1.3"))
    compiled = compile_circuit(_cycle_circuit())

    numpy_state = _run_backend("numpy", compiled)
    fused_state = _run_backend("fused", compiled)
    np.testing.assert_array_equal(fused_state.planes, numpy_state.planes)

    numpy_seconds, fused_seconds = _interleaved_best_seconds(
        [
            lambda: _run_backend("numpy", compiled),
            lambda: _run_backend("fused", compiled),
        ]
    )
    speedup = numpy_seconds / fused_seconds
    print(
        f"\n{CYCLES} recovery cycles, {TRIALS} trials: "
        f"numpy {numpy_seconds * 1e3:.2f} ms, "
        f"fused {fused_seconds * 1e3:.2f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= floor, (
        f"fused backend only {speedup:.2f}x faster than numpy "
        f"({numpy_seconds * 1e3:.2f} ms vs {fused_seconds * 1e3:.2f} ms), "
        f"floor {floor}x"
    )
