"""Bench: Figure 2 — the nine-bit error-recovery circuit.

Exhaustive single-fault tolerance plus the Monte-Carlo g^2 scaling of
the logical error rate.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig2_error_recovery(benchmark, record):
    result = run_once(benchmark, lambda: run_experiment("fig2"))
    record(result)
