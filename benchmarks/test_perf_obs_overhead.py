"""Acceptance: disabled observability costs nothing measurable.

``repro.obs`` instrumentation sits on the executor's hot path — span
context managers around every group, counters on every run — and its
whole license to live there is the no-op-cheap contract: with tracing
disabled, ``trace()`` is one global load returning a shared no-op span.

This benchmark pins that contract with a ratio test: the real
instrumented executor (tracing disabled) versus the same executor with
every ``trace``/counter call monkeypatched to inert stubs — an
obs-stubbed build.  The workload is the 100k-trial noisy recovery
sweep (where any per-group overhead would surface); trials override
via ``REPRO_TRIALS``.  The ceiling is 2% by default,
``REPRO_OBS_OVERHEAD_CEILING`` (percent) overrides it for noisy shared
CI runners.

Timing uses ``time.perf_counter`` directly: benchmarks live outside
``src/repro``, where codelint RL500 does not apply.
"""

from __future__ import annotations

import os
import time

from repro.coding import recovery_circuit
from repro.noise import NoiseModel, repetition_failure_predicate
from repro.runtime import (
    ExecutionPolicy,
    Executor,
    PredicateObservable,
    RunSpec,
)
import repro.runtime.executor as executor_module

TRIALS = int(os.environ.get("REPRO_TRIALS", "100000"))
RECOVERY_INPUT = (1, 1, 1) + (0,) * 6
POINTS = 4
OBSERVABLE = PredicateObservable(repetition_failure_predicate((0, 1, 2), 1))


def _specs():
    return [
        RunSpec(
            circuit=recovery_circuit(),
            input_bits=RECOVERY_INPUT,
            observable=OBSERVABLE,
            noise=NoiseModel(gate_error=0.01),
            trials=TRIALS,
            seed=1000 + index,
        )
        for index in range(POINTS)
    ]


def _run_sweep():
    Executor(ExecutionPolicy(parallel=None)).run(_specs())


class _InertSpan:
    def set(self, **attrs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class _InertCounter:
    def inc(self, amount=1):
        pass


def _stub_obs(monkeypatch):
    """The counterfactual build: every obs hook in the executor inert."""
    span = _InertSpan()
    inert = _InertCounter()
    monkeypatch.setattr(
        executor_module, "trace", lambda name, **attrs: span
    )
    for name in (
        "_RUNS",
        "_POINTS",
        "_GROUPS",
        "_STACKED_POINTS",
        "_LEGACY_POINTS",
    ):
        monkeypatch.setattr(executor_module, name, inert)


def _interleaved_best_seconds(functions, rounds: int = 5) -> list[float]:
    """Best-of-``rounds`` per function, rounds interleaved so machine
    phases hit all contenders instead of skewing the ratio."""
    for function in functions:  # warm-up: compile cache, scratch pools
        function()
    best = [float("inf")] * len(functions)
    for _ in range(rounds):
        for index, function in enumerate(functions):
            start = time.perf_counter()
            function()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def test_disabled_tracing_overhead_within_ceiling(monkeypatch):
    from repro.obs import tracing_enabled

    assert not tracing_enabled(), "benchmark requires tracing disabled"
    ceiling = float(os.environ.get("REPRO_OBS_OVERHEAD_CEILING", "2")) / 100.0

    def run_stubbed():
        with monkeypatch.context() as patch:
            _stub_obs(patch)
            _run_sweep()

    real_s, stubbed_s = _interleaved_best_seconds([_run_sweep, run_stubbed])
    ratio = real_s / stubbed_s
    assert ratio <= 1.0 + ceiling, (
        f"disabled-tracing overhead {100 * (ratio - 1):.2f}% exceeds the "
        f"{100 * ceiling:.0f}% ceiling (real {real_s:.4f}s vs stubbed "
        f"{stubbed_s:.4f}s over {TRIALS} trials x {POINTS} points)"
    )
