"""Ablation: the paper's two initialisation accountings, measured.

Section 2.2 quotes both G = 11 (initialisation as noisy as gates,
rho = 1/165) and G = 9 (accurate initialisation, rho = 1/108).  This
bench measures the logical error under both noise models and confirms
accurate initialisation strictly helps — the measured counterpart of
the two threshold columns.
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.harness.experiments import trial_budget
from repro.harness.tables import format_table
from repro.harness.threshold_finder import measure_cycle_errors

GATE_ERROR = 8e-3


def test_ablation_init_accuracy(benchmark):
    trials = trial_budget()

    def compare():
        (noisy_init, _), = measure_cycle_errors(
            ((GATE_ERROR, 93),), trials, include_resets=True
        )
        (clean_init, _), = measure_cycle_errors(
            ((GATE_ERROR, 94),), trials, include_resets=False
        )
        return noisy_init, clean_init

    noisy_init, clean_init = run_once(benchmark, compare)
    text = format_table(
        ("initialisation model", "G", "analytic rho", "measured g_logical"),
        [
            ("as noisy as gates", 11, "1/165", f"{noisy_init:.2e}"),
            ("perfectly accurate", 9, "1/108", f"{clean_init:.2e}"),
        ],
        title=f"Per-cycle logical error at g = {GATE_ERROR} ({trials} trials)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation-init-accuracy.txt").write_text(text + "\n")
    print()
    print(text)
    assert clean_init <= noisy_init
