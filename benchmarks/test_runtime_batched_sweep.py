"""Bench gate: cross-point plane batching beats the per-point sweep.

The PR 3 acceptance criterion for the runtime layer: a 10-point,
100k-trial logical-error sweep expressed as one ``Executor.run`` batch
(all points stacked into a single bitplane array) must beat the PR 2
pipeline — the same points routed one at a time through ``sweep`` over
the classic single-point runner — by at least 1.5x wall-clock
(``REPRO_RUNTIME_SPEEDUP_FLOOR`` overrides the floor for noisy shared
runners).

The workload is the deep sub-threshold storage sweep: the per-cycle
logical error of a 3-cycle gate+recovery circuit across a geometric
grid of gate errors from 1e-4 to 2e-3 (around and below the analytic
``rho = 1/165``).  This is exactly the regime that *needs* a 100k+
trial budget — logical failures are rare events there — and the regime
every threshold figure probes.  Faults being rare, the wall-clock is
dominated by per-point fixed costs (program applies, fault-pass
segmentation, per-slot bookkeeping), which is what cross-point
batching amortises: the stacked run applies each fused slot once over
all points' words and segments each point's whole fault pass once.

The PR 2 baseline is reconstructed faithfully inside this file: the
memoised cycle processor, the content-keyed compile cache, fused
scheduling, and the packed decode are all ON (those are PR 2 wins);
the only difference is per-point execution versus one stacked array.
Both pipelines time themselves, so the gate keeps guarding the ratio
under ``--benchmark-disable``.

Because stacked execution is bit-identical per point to solo runs, the
two pipelines must also produce IDENTICAL numbers — asserted here, so
the speedup can never come at the cost of the statistics.
"""

from __future__ import annotations

import os
import time
from functools import partial

from repro.harness.sweep import geometric_grid, spawn_seeds, sweep
from repro.harness.threshold_finder import (
    _CYCLE_INPUT,
    _cycle_processor,
    measure_cycle_errors,
    per_cycle_rate,
)
from repro.noise import NoiseModel, NoisyRunner
from repro.runtime import ExecutionPolicy

TRIALS = 100_000
POINTS = 10
CYCLES = 3


def _grid_points() -> list[tuple[float, int]]:
    grid = geometric_grid(1e-4, 2e-3, POINTS)
    return list(zip(grid, spawn_seeds(17, POINTS)))


def _pr2_point(point: tuple[float, int], trials: int) -> tuple[float, int]:
    """The PR 2 evaluation: one classic fused bitplane run per point."""
    gate_error, seed = point
    processor = _cycle_processor(CYCLES)
    physical = processor.physical_input(_CYCLE_INPUT)
    runner = NoisyRunner(NoiseModel(gate_error=gate_error), seed, engine="bitplane")
    result = runner.run_from_input(processor.circuit, physical, trials)
    failures = processor.count_decode_failures(result.states, _CYCLE_INPUT)
    return per_cycle_rate(failures, trials, CYCLES), failures


def _pr2_sweep() -> tuple:
    return sweep(
        partial(_pr2_point, trials=TRIALS), _grid_points(), parameter="(g, seed)"
    ).ys


def _batched_sweep() -> list[tuple[float, int]]:
    return measure_cycle_errors(
        _grid_points(),
        TRIALS,
        cycles=CYCLES,
        policy=ExecutionPolicy(engine="bitplane"),
    )


def _best_seconds(function, rounds: int = 3) -> tuple[float, object]:
    result = function()  # warm-up: processor + compile caches, allocator
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_runtime_batched_sweep_speedup():
    """Acceptance: >= 1.5x on the 10-point, 100k-trial sweep."""
    floor = float(os.environ.get("REPRO_RUNTIME_SPEEDUP_FLOOR", "1.5"))
    baseline_seconds, baseline_results = _best_seconds(_pr2_sweep)
    batched_seconds, batched_results = _best_seconds(_batched_sweep)
    assert list(baseline_results) == list(batched_results), (
        "stacked sweep must reproduce the per-point pipeline bit for bit"
    )
    speedup = baseline_seconds / batched_seconds
    print(
        f"\n{POINTS}-point x {TRIALS}-trial logical-error sweep: "
        f"per-point {baseline_seconds * 1e3:.0f} ms, stacked "
        f"{batched_seconds * 1e3:.0f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= floor, (
        f"stacked sweep only {speedup:.2f}x faster than the per-point "
        f"pipeline ({baseline_seconds * 1e3:.0f} ms vs "
        f"{batched_seconds * 1e3:.0f} ms), floor {floor}x"
    )


def test_batched_sweep_matches_solo_runs_small():
    """Correctness companion at CI scale: stacked == solo, point by point."""
    points = _grid_points()[:4]
    stacked = measure_cycle_errors(points, 5000, cycles=CYCLES)
    for point, result in zip(points, stacked):
        assert measure_cycle_errors([point], 5000, cycles=CYCLES)[0] == result
