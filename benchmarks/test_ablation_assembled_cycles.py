"""Ablation: the fully assembled local logical cycles, counted.

Materialises the complete interleave → gate → uninterleave → recover
cycles as circuits and compares operation counts across geometries —
the concrete objects behind Section 3's G = 16 (2D) and G = 40 (1D).
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.core import MAJ
from repro.harness.tables import format_table
from repro.local import (
    Chain,
    circuit_is_local,
    one_d_cycle_operation_count,
    one_d_logical_cycle,
    two_d_logical_cycle,
)


def test_ablation_assembled_cycles(benchmark):
    def build():
        one_d = one_d_logical_cycle(MAJ)
        two_d = two_d_logical_cycle(MAJ)
        return one_d, two_d

    (circuit_1d, census_1d), (circuit_2d, census_2d, assembly, _) = run_once(
        benchmark, build
    )

    rows = [
        (
            "2D (3 stacked tiles)",
            census_2d.total_ops,
            census_2d.worst_codeword_ops,
            "16 (recounted 17)",
            circuit_is_local(circuit_2d, assembly),
        ),
        (
            "1D (27-site line)",
            census_1d.total_ops,
            census_1d.worst_codeword_ops,
            f"{one_d_cycle_operation_count(True)}",
            circuit_is_local(circuit_1d, Chain(27)),
        ),
    ]
    text = format_table(
        (
            "geometry",
            "total ops",
            "ops on busiest home cell",
            "paper per-codeword G",
            "local",
        ),
        rows,
        title="Assembled logical cycles (one MAJ on three codewords)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation-assembled-cycles.txt").write_text(text + "\n")
    print()
    print(text)

    # Locality costs: 1D needs over twice the operations of 2D.
    assert census_1d.total_ops > 2 * census_2d.total_ops
    # The home-cell census upper-bounds the schedule-level G.
    assert census_1d.worst_codeword_ops >= 40
    assert circuit_is_local(circuit_1d, Chain(27))
    assert circuit_is_local(circuit_2d, assembly)
