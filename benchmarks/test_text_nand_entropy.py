"""Bench: Section 4, footnote 4 — the 3/2-bit NAND optimum."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_text_nand_entropy(benchmark, record):
    result = run_once(benchmark, lambda: run_experiment("nand-cost"))
    record(result)
