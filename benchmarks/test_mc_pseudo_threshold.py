"""Bench: Monte-Carlo pseudo-threshold vs the analytic lower bound."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_mc_pseudo_threshold(benchmark, record):
    result = run_once(benchmark, lambda: run_experiment("mc-threshold"))
    record(result)
