"""Bench: Monte-Carlo pseudo-threshold vs the analytic lower bound.

Besides the paper-vs-measured table, this file pins the PR acceptance
criterion for the threshold pipeline: the current pipeline (fused
compiled schedule + process-wide compile cache + budget-aware adaptive
bisection) must run the 100k-trial pseudo-threshold search at least
2x faster end-to-end than the PR 1 baseline.  The baseline is
reconstructed faithfully inside this file: a fresh processor build and
compile per evaluation (``REPRO_COMPILE_CACHE=0``), the per-op
schedule with one fault draw per op (``REPRO_FUSE=0``), the unpacked
decode path, and a fixed-budget bisection that spends the full trial
budget at every point.  Like the engine speedup gate, it times both
pipelines itself so it keeps guarding the ratio under
``--benchmark-disable``; shared CI runners can lower the floor via
``REPRO_PIPELINE_SPEEDUP_FLOOR``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.coding.logical import LogicalProcessor
from repro.core import library
from repro.core.compiled import clear_compile_cache
from repro.harness.experiments import run_experiment
from repro.harness.threshold_finder import (
    _PROCESSOR_CACHE,
    find_pseudo_threshold,
)
from repro.noise import NoiseModel, NoisyRunner

TRIALS = 100_000


def test_mc_pseudo_threshold(benchmark, record):
    result = run_once(benchmark, lambda: run_experiment("mc-threshold"))
    record(result)


def _pr1_logical_error(gate_error: float) -> float:
    """The PR 1 evaluation loop: rebuild, recompile, decode unpacked."""
    processor = LogicalProcessor(3, include_resets=True)
    processor.apply(library.MAJ, 0, 1, 2)
    processor.apply(library.MAJ_INV, 0, 1, 2)
    physical = processor.physical_input((1, 0, 1))
    runner = NoisyRunner(NoiseModel(gate_error=gate_error), 51, engine="bitplane")
    result = runner.run_from_input(processor.circuit, physical, TRIALS)
    decoded = processor.decode_batch(result.states)
    expected = np.asarray((1, 0, 1), dtype=np.uint8)
    failures = int((decoded != expected).any(axis=1).sum())
    return 1.0 - (1.0 - failures / TRIALS) ** 0.5


def _clear_pipeline_caches() -> None:
    clear_compile_cache()
    _PROCESSOR_CACHE.clear()


def _pr1_pipeline() -> None:
    previous = {knob: os.environ.get(knob) for knob in ("REPRO_FUSE", "REPRO_COMPILE_CACHE")}
    os.environ["REPRO_FUSE"] = "0"
    os.environ["REPRO_COMPILE_CACHE"] = "0"
    try:
        _clear_pipeline_caches()
        find_pseudo_threshold(
            _pr1_logical_error, lower=2e-3, upper=8e-2, iterations=8
        )
    finally:
        for knob, value in previous.items():
            if value is None:
                os.environ.pop(knob, None)
            else:
                os.environ[knob] = value


def _current_pipeline() -> None:
    # Cold caches each round: the measured win must not depend on state
    # left over from a previous experiment in the same process.
    _clear_pipeline_caches()
    run_experiment("mc-threshold")


def _best_seconds(function, rounds: int = 3) -> float:
    function()  # warm-up: gate lowering lru, allocator, BLAS threads
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def test_threshold_pipeline_speedup(monkeypatch):
    """Acceptance: >= 2x end-to-end on the 100k-trial threshold search."""
    floor = float(os.environ.get("REPRO_PIPELINE_SPEEDUP_FLOOR", "2"))
    monkeypatch.setenv("REPRO_TRIALS", str(TRIALS))
    baseline_seconds = _best_seconds(_pr1_pipeline)
    current_seconds = _best_seconds(_current_pipeline)
    speedup = baseline_seconds / current_seconds
    print(
        f"\nmc-threshold, {TRIALS} trials: PR1 pipeline "
        f"{baseline_seconds * 1e3:.0f} ms, current {current_seconds * 1e3:.0f} ms, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= floor, (
        f"threshold pipeline only {speedup:.2f}x faster than the PR 1 "
        f"baseline ({baseline_seconds * 1e3:.0f} ms vs "
        f"{current_seconds * 1e3:.0f} ms), floor {floor}x"
    )
