"""Bench: Figure 1 — MAJ from two CNOTs and a Toffoli."""

from repro.harness.experiments import run_experiment


def test_fig1_maj_construction(benchmark, record):
    result = benchmark(lambda: run_experiment("fig1"))
    record(result)
