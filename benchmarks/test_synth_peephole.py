"""Bench: peephole optimisation of the redundant recovery cycle.

Runs the registered ``synth-peephole`` experiment: the optimiser must
remove >= 20% of the fault locations of a deliberately redundant
concatenated recovery cycle with every rewrite verified by exhaustive
equivalence, and the stacked Executor must measure the optimised
cycle's logical error rate as statistically no worse.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_synth_peephole(benchmark, record):
    result = run_once(benchmark, lambda: run_experiment("synth-peephole"))
    record(result)
