"""Shared machinery for the reproduction benches.

Every bench runs one registered experiment under ``pytest-benchmark``,
prints its paper-vs-measured table, writes the table to
``benchmarks/results/<id>.txt``, and asserts that every comparison row
matched.  Run them with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_TRIALS`` to trade Monte-Carlo precision against runtime.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.experiments_md import RESULTS_DIR, write_result

__all__ = ["RESULTS_DIR", "record", "run_once"]


@pytest.fixture
def record():
    """Print, persist, and assert one experiment's comparison table."""

    def _record(result: ExperimentResult) -> None:
        text = write_result(result)
        print()
        print(text)
        failing = [row for row in result.rows if not row[3]]
        assert result.all_match, f"mismatched rows: {failing}"

    return _record


def run_once(benchmark, function):
    """Benchmark a heavy experiment with a single measured round."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
