"""Bench: the synthesis searcher rediscovers Figures 1 and 5 minimally.

This file is the PR acceptance gate for `repro.synth.search`:
`find_optimal` must return the paper's MAJ decomposition (2 CNOTs + a
Toffoli, Figure 1) and both SWAP3 rotations (2 SWAPs each, Figure 5)
at provably minimal gate count, and the identity miner must populate
the Figure-1 equivalence class the peephole optimiser rewrites with.
``REPRO_SYNTH_DEPTH`` caps the iterative-deepening budget on shared
runners (the constructions live at depths 2-3, so any cap >= 3 keeps
the gates meaningful).
"""

from __future__ import annotations

from repro.core import CNOT, MAJ, SWAP, SWAP3_DOWN, SWAP3_UP, TOFFOLI, circuit_gate
from repro.synth import IdentityDatabase, find_optimal, search_depth_budget


def test_search_rediscovers_fig1_maj(benchmark):
    budget = max(search_depth_budget(4), 3)
    result = benchmark(
        lambda: find_optimal(MAJ, (CNOT, TOFFOLI), max_gates=budget)
    )
    assert result.gate_count == 3
    assert result.circuit.count_ops() == {"CNOT": 2, "TOFFOLI": 1}
    assert circuit_gate(result.circuit, "synth-maj").same_action(MAJ)
    assert [(op.label, op.wires) for op in result.circuit] == [
        ("CNOT", (0, 1)),
        ("CNOT", (0, 2)),
        ("TOFFOLI", (1, 2, 0)),
    ]


def test_search_rediscovers_fig5_swap3(benchmark):
    budget = max(search_depth_budget(4), 2)

    def synthesise_both():
        return [
            find_optimal(rotation, (SWAP,), max_gates=budget)
            for rotation in (SWAP3_UP, SWAP3_DOWN)
        ]

    results = benchmark(synthesise_both)
    for rotation, result in zip((SWAP3_UP, SWAP3_DOWN), results):
        assert result.gate_count == 2
        assert result.circuit.count_ops() == {"SWAP": 2}
        assert circuit_gate(result.circuit, "synth-swap3").same_action(rotation)


def test_identity_mining_covers_the_figure_1_class(benchmark):
    depth = max(min(search_depth_budget(3), 3), 1)

    def mine():
        database = IdentityDatabase(3)
        database.mine((CNOT, TOFFOLI, MAJ), max_gates=depth)
        return database

    database = benchmark(mine)
    best = database.best(MAJ.permutation)
    assert best is not None and len(best) == 1
    if depth >= 3:
        # The MAJ class holds both the single gate and the Figure-1
        # three-gate member — an equivalence usable as a rewrite rule.
        lengths = {len(member) for member in database.classes[MAJ.table].values()}
        assert 1 in lengths and 3 in lengths
