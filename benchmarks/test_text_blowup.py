"""Bench: Section 2.3 — overhead example and poly-log exponents."""

from repro.harness.experiments import run_experiment


def test_text_blowup(benchmark, record):
    result = benchmark(lambda: run_experiment("blowup"))
    record(result)
