"""Bench gate: the stacked adaptive threshold search beats solo stages.

The PR 4 acceptance criterion for the search harness: the adaptive
pseudo-threshold search at the 100k-trial budget, expressed as stacked
``RunSpec`` rounds (bracket endpoints plus the speculative first
midpoint in one plane array, each bisection round batching its pending
escalation stage with the two next possible midpoints), must beat the
PR 3 sequential path — the same search driving one solo
``_run_point_legacy`` evaluation per escalation stage, exactly how
PR 3's ``mc-threshold`` ran — by at least 1.3x wall-clock while
returning a bit-identical :class:`PseudoThreshold`.
``REPRO_THRESHOLD_SPEEDUP_FLOOR`` overrides the floor for noisy shared
runners.

The gated workload is the coarse bracket-localisation search: a wide
bracket around the crossing, iterations stopping at a ~25% bracket,
every stage decided at the 1/16 escalation stage.  This is the regime
the adaptive ladder is designed to live in — points far from the
crossing decided at a fraction of the budget — and it is pure search
*harness* work, so it isolates what this PR changed (measured ~1.7x
here).  The endgame refinement regime behaves differently: once the
bisection parks on the crossing, its cost is dominated by full-budget
escalation stages whose simulation work is bit-identical in both paths
by construction, so no scheduling change can compress it (measured
~1.05-1.25x end-to-end depending on machine state).  That regime is
covered by the companion test below, which pins the structural
guarantees that ARE deterministic: the identical result and the
collapse of ten solo stage runs into six stacked executor calls.

Both tests time/structure-check themselves, so the gates keep guarding
under ``--benchmark-disable``.
"""

from __future__ import annotations

import os
import time

from repro.harness.threshold_finder import (
    cycle_stage_spec,
    find_pseudo_threshold_adaptive,
    per_cycle_rate,
)
from repro.runtime import ExecutionPolicy, Executor
from repro.runtime.executor import _run_point_legacy

TRIALS = 100_000
POLICY = ExecutionPolicy(engine="bitplane")

#: The gated workload: coarse localisation, every stage decided at the
#: 1/16 stage (verified by the solo-run counter in the structure test).
COARSE = dict(lower=1e-3, upper=6.4e-2, trials=TRIALS, iterations=2, seed=51)

#: The canonical mc-threshold search (endgame refinement regime).
CANONICAL = dict(lower=2e-3, upper=8e-2, trials=TRIALS, iterations=8, seed=51)


def _pr3_stage(gate_error: float, n_trials: int, seed: int):
    """One PR 3 evaluation stage: spec built, run through the classic
    single-point runner (PR 3's executor routed lone specs there)."""
    spec = cycle_stage_spec(gate_error, n_trials, seed)
    result = _run_point_legacy(spec, "bitplane", POLICY)
    return per_cycle_rate(result.failures, n_trials, 1), result.failures


def _sequential_search(**kwargs):
    return find_pseudo_threshold_adaptive(_pr3_stage, **kwargs)


def _stacked_search(**kwargs):
    return find_pseudo_threshold_adaptive(
        spec_builder=cycle_stage_spec, policy=POLICY, **kwargs
    )


def _best_seconds(function, rounds: int = 5) -> tuple[float, object]:
    result = function()  # warm-up: processor + compile caches, allocator
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_threshold_search_stacked_speedup():
    """Acceptance: >= 1.3x on the coarse 100k-budget search, same result."""
    floor = float(os.environ.get("REPRO_THRESHOLD_SPEEDUP_FLOOR", "1.3"))
    sequential_seconds, sequential_result = _best_seconds(
        lambda: _sequential_search(**COARSE)
    )
    stacked_seconds, stacked_result = _best_seconds(
        lambda: _stacked_search(**COARSE)
    )
    assert sequential_result == stacked_result, (
        "stacked search must reproduce the sequential PseudoThreshold "
        "bit for bit"
    )
    speedup = sequential_seconds / stacked_seconds
    print(
        f"\ncoarse adaptive search, {TRIALS}-trial budget: sequential "
        f"{sequential_seconds * 1e3:.1f} ms, stacked "
        f"{stacked_seconds * 1e3:.1f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= floor, (
        f"stacked search only {speedup:.2f}x faster than the PR 3 "
        f"sequential path ({sequential_seconds * 1e3:.1f} ms vs "
        f"{stacked_seconds * 1e3:.1f} ms), floor {floor}x"
    )


def test_full_search_bit_identical_and_batched(monkeypatch):
    """The canonical search: identical result, 10 solo runs -> 6 calls.

    The endgame regime's wall-clock is dominated by full-budget
    escalation stages that are bit-identical work in both paths, so
    this companion pins the deterministic guarantees instead of a
    timing ratio: the stacked search must return the identical
    PseudoThreshold while issuing strictly fewer executor calls than
    the sequential path's solo stage runs.
    """
    solo_runs = {"n": 0}

    def counting_stage(gate_error, n_trials, seed):
        solo_runs["n"] += 1
        return _pr3_stage(gate_error, n_trials, seed)

    sequential_result = find_pseudo_threshold_adaptive(
        counting_stage, **CANONICAL
    )

    calls = []
    original = Executor.run

    def traced(self, specs):
        calls.append(len(specs))
        return original(self, specs)

    monkeypatch.setattr(Executor, "run", traced)
    stacked_result = _stacked_search(**CANONICAL)
    monkeypatch.undo()

    assert sequential_result == stacked_result
    print(
        f"\ncanonical search: {solo_runs['n']} solo stage runs -> "
        f"{len(calls)} stacked executor calls (batch sizes {calls})"
    )
    assert len(calls) < solo_runs["n"], (
        f"stacked search issued {len(calls)} executor calls, expected "
        f"fewer than the sequential path's {solo_runs['n']} solo runs"
    )
