"""Bench: Figure 5 — SWAP3 as two SWAPs on three adjacent bits."""

from repro.harness.experiments import run_experiment


def test_fig5_swap3(benchmark, record):
    result = benchmark(lambda: run_experiment("fig5"))
    record(result)
