"""Bench: Section 4 — entropy bounds and measured ancilla entropy."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_text_entropy(benchmark, record):
    result = run_once(benchmark, lambda: run_experiment("entropy"))
    record(result)
