"""Ablation: what does the recovery cycle actually buy?

Runs the same logical gate sequence with and without error-recovery
cycles at a below-threshold error rate; the recovery-enabled run must
fail at a materially lower rate, and disabling it must reduce to the
unprotected scaling ~ gT.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.coding.logical import LogicalProcessor
from repro.core import library
from repro.harness.experiments import trial_budget
from repro.harness.tables import format_table
from repro.noise.model import NoiseModel
from repro.noise.monte_carlo import NoisyRunner

GATE_ERROR = 3e-3
# Long enough that unprotected error accumulation (~ T^2 g^2 without
# recovery, since uncorrected faults meet across the whole history)
# overtakes the ~ T c2 g^2 cost of recovering every cycle.  For very
# short computations skipping recovery is genuinely cheaper — that IS
# the trade the paper's overhead analysis prices.
LOGICAL_GATES = 50


def _failure_rate(recover: bool, seed: int, trials: int) -> float:
    processor = LogicalProcessor(3)
    for _ in range(LOGICAL_GATES // 2):
        processor.apply(library.MAJ, 0, 1, 2, recover=recover)
        processor.apply(library.MAJ_INV, 0, 1, 2, recover=recover)
    logical_input = (1, 0, 1)
    physical = processor.physical_input(logical_input)
    runner = NoisyRunner(NoiseModel(gate_error=GATE_ERROR), seed=seed)
    result = runner.run_from_input(processor.circuit, physical, trials)
    decoded = processor.decode_batch(result.states)
    expected = np.asarray(logical_input, dtype=np.uint8)
    return float((decoded != expected).any(axis=1).mean())


def test_ablation_recovery_value(benchmark):
    trials = trial_budget()

    def compare():
        return (
            _failure_rate(recover=True, seed=91, trials=trials),
            _failure_rate(recover=False, seed=92, trials=trials),
        )

    with_recovery, without_recovery = run_once(benchmark, compare)
    text = format_table(
        ("configuration", "failure rate"),
        [
            ("with recovery cycles", f"{with_recovery:.2e}"),
            ("without recovery cycles", f"{without_recovery:.2e}"),
            (
                "advantage",
                f"{without_recovery / max(with_recovery, 1e-12):.1f}x",
            ),
        ],
        title=(
            f"{LOGICAL_GATES} logical gates at g = {GATE_ERROR} "
            f"({trials} trials)"
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation-recovery-value.txt").write_text(text + "\n")
    print()
    print(text)
    assert with_recovery < without_recovery
