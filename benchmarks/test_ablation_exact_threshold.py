"""Ablation: how conservative is Eq. 1's pair-counting bound?

Section 2.2 notes "a tighter bound will result in an improved error
threshold".  Exhaustive fault-pair enumeration computes the *exact*
quadratic failure coefficient of each recovery cycle, quantifying the
slack: most operation pairs are harmless, so the exact crossing sits
well above the paper's ``1/(3 C(G,2))``.
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.harness.tables import format_table
from repro.noise.pair_analysis import analyse_one_d_cycle, analyse_recovery_cycle


def test_ablation_exact_threshold(benchmark):
    def analyse():
        return analyse_recovery_cycle(), analyse_one_d_cycle()

    nonlocal_analysis, one_d_analysis = run_once(benchmark, analyse)

    rows = []
    for label, analysis in (
        ("Figure 2 (non-local)", nonlocal_analysis),
        ("Figure 7 (1D local)", one_d_analysis),
    ):
        rows.append(
            (
                label,
                analysis.operations,
                analysis.paper_bound_coefficient(),
                round(analysis.quadratic_coefficient, 3),
                f"1/{analysis.paper_bound_coefficient()}",
                f"{analysis.exact_threshold:.3g}",
            )
        )
    text = format_table(
        (
            "recovery cycle",
            "ops",
            "3C(E,2) bound",
            "exact c2",
            "bound thr.",
            "exact thr.",
        ),
        rows,
        title="Exact pair analysis vs the paper's pair-counting bound",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation-exact-threshold.txt").write_text(text + "\n")
    print()
    print(text)

    # The fault-tolerance property: no single fault is harmful.
    assert nonlocal_analysis.harmful_single_faults == 0
    assert one_d_analysis.harmful_single_faults == 0
    # The exact coefficient is far below the counting bound.
    assert nonlocal_analysis.quadratic_coefficient < 0.1 * (
        nonlocal_analysis.paper_bound_coefficient()
    )
    # Locality costs fault pairs: 1D is strictly weaker.
    assert (
        one_d_analysis.quadratic_coefficient
        > nonlocal_analysis.quadratic_coefficient
    )
