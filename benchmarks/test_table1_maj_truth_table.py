"""Bench: Table 1 — the reversible MAJ truth table."""

from repro.harness.experiments import run_experiment


def test_table1_maj_truth_table(benchmark, record):
    result = benchmark(lambda: run_experiment("table1"))
    record(result)
