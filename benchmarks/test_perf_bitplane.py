"""Head-to-head perf rows: bit-plane engine vs the uint8 batched engine.

Mirrors the workloads of ``test_perf_simulator.py`` (noiseless and
noisy Figure-2 recovery over 100k trials, level-2 noisy logical gate)
on the :class:`~repro.core.bitplane.BitplaneState` engine, and pins the
acceptance criterion directly: the bit-plane engine must be at least
10x faster than ``BatchedState`` on the 100k-trial noisy recovery
cycle.  The speedup test times both engines itself (best of several
rounds) so it keeps guarding the ratio even under
``--benchmark-disable``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.coding import recovery_circuit
from repro.coding.concatenation import ConcatenatedComputation
from repro.core import MAJ
from repro.core.bitplane import BitplaneState
from repro.core.compiled import CompiledCircuit
from repro.noise import NoiseModel, NoisyRunner

TRIALS = 100_000
RECOVERY_INPUT = (1, 1, 1) + (0,) * 6


def test_perf_bitplane_recovery_cycle(benchmark):
    """Noiseless Figure-2 recovery over a 100k-trial bit-plane batch."""
    compiled = CompiledCircuit(recovery_circuit())

    def cycle():
        batch = BitplaneState.broadcast(RECOVERY_INPUT, TRIALS)
        compiled.run(batch)
        return int(batch.column(0).sum(dtype=np.int64))

    result = benchmark(cycle)
    assert result == TRIALS


def test_perf_bitplane_noisy_recovery_cycle(benchmark):
    """Noisy recovery at g = 1e-3 over a 100k-trial bit-plane batch."""
    circuit = recovery_circuit()

    def cycle():
        runner = NoisyRunner(NoiseModel(gate_error=1e-3), seed=0, engine="bitplane")
        result = runner.run_from_input(circuit, RECOVERY_INPUT, TRIALS)
        return int(result.states.majority_of((0, 3, 6)).sum(dtype=np.int64))

    survived = benchmark(cycle)
    assert survived > 99_000


def test_perf_bitplane_level2_noisy_gate(benchmark):
    """One noisy level-2 logical MAJ over a 5k-trial bit-plane batch."""

    def simulate():
        computation = ConcatenatedComputation(3, 2)
        physical = computation.physical_input((1, 0, 1))
        computation.apply(MAJ, 0, 1, 2)
        runner = NoisyRunner(NoiseModel(gate_error=1e-3), seed=1, engine="bitplane")
        result = runner.run_from_input(computation.circuit, physical, 5000)
        decoded = computation.decode_batch(result.states)
        expected = np.asarray(MAJ.apply((1, 0, 1)), dtype=np.uint8)
        return int((decoded == expected).all(axis=1).sum())

    correct = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert correct > 4950


def _best_seconds(function, rounds: int = 5) -> float:
    function()  # warm-up: compile caches, allocator, BLAS threads
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def test_bitplane_speedup_over_batched():
    """Acceptance: >= 10x on the 100k-trial noisy recovery cycle.

    Measured headroom is ~2x over the floor on an idle machine; shared
    CI runners can lower the floor via ``REPRO_SPEEDUP_FLOOR`` so
    scheduler jitter on millisecond-scale timings cannot fail a run on
    its own, while local/acceptance runs keep the full 10x gate.
    """
    floor = float(os.environ.get("REPRO_SPEEDUP_FLOOR", "10"))
    circuit = recovery_circuit()

    def noisy_cycle(engine):
        runner = NoisyRunner(NoiseModel(gate_error=1e-3), seed=0, engine=engine)
        result = runner.run_from_input(circuit, RECOVERY_INPUT, TRIALS)
        return int(result.states.majority_of((0, 3, 6)).sum(dtype=np.int64))

    batched_seconds = _best_seconds(lambda: noisy_cycle("batched"))
    bitplane_seconds = _best_seconds(lambda: noisy_cycle("bitplane"))
    speedup = batched_seconds / bitplane_seconds
    print(
        f"\nnoisy recovery, {TRIALS} trials: batched {batched_seconds * 1e3:.2f} ms, "
        f"bitplane {bitplane_seconds * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= floor, (
        f"bit-plane engine only {speedup:.1f}x faster than batched "
        f"({batched_seconds * 1e3:.2f} ms vs {bitplane_seconds * 1e3:.2f} ms), "
        f"floor {floor}x"
    )
