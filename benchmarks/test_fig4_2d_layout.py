"""Bench: Figure 4 — the 2D tile layout and interleave costs."""

from repro.harness.experiments import run_experiment


def test_fig4_2d_layout(benchmark, record):
    result = benchmark(lambda: run_experiment("fig4"))
    record(result)
