"""Bench: Figure 3 — concatenated gates: census and error suppression."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig3_concatenation(benchmark, record):
    result = run_once(benchmark, lambda: run_experiment("fig3"))
    record(result)
