"""Bench: the irreversible NAND-multiplexing baseline comparison."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_baseline_multiplexing(benchmark, record):
    result = run_once(benchmark, lambda: run_experiment("baseline"))
    record(result)
