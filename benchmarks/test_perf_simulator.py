"""Performance benches for the simulation substrate itself.

These do not reproduce paper artefacts; they keep the engine honest so
the Monte-Carlo experiments stay fast enough to be rerun casually.
"""

from __future__ import annotations

import numpy as np

from repro.coding import recovery_circuit
from repro.coding.concatenation import concatenated_gate_circuit
from repro.core import MAJ
from repro.core.simulator import BatchedState, run_batched
from repro.noise import NoiseModel, NoisyRunner


def test_perf_batched_recovery_cycle(benchmark):
    """Noiseless Figure-2 recovery over a 100k-trial batch."""
    circuit = recovery_circuit()

    def cycle():
        batch = BatchedState.broadcast((1, 1, 1) + (0,) * 6, trials=100_000)
        run_batched(circuit, batch)
        return int(batch.array[:, 0].sum())

    result = benchmark(cycle)
    assert result == 100_000


def test_perf_noisy_recovery_cycle(benchmark):
    """Noisy recovery at g = 1e-3 over a 100k-trial batch (uint8 engine).

    Pinned to ``engine="batched"`` — this is the baseline row that
    ``test_perf_bitplane.py`` compares against.
    """
    circuit = recovery_circuit()

    def cycle():
        runner = NoisyRunner(NoiseModel(gate_error=1e-3), seed=0, engine="batched")
        result = runner.run_from_input(circuit, (1, 1, 1) + (0,) * 6, 100_000)
        return int(result.states.majority_of((0, 3, 6)).sum())

    survived = benchmark(cycle)
    assert survived > 99_000


def test_perf_level2_compile(benchmark):
    """Compiling a full level-2 logical gate (441 gates, 243 wires)."""

    def compile_gate():
        circuit, _ = concatenated_gate_circuit(MAJ, 2)
        return len(circuit)

    ops = benchmark(compile_gate)
    assert ops == 441 + 180


def test_perf_level2_noisy_gate(benchmark):
    """One noisy level-2 logical MAJ over a 5k-trial batch."""
    from repro.coding.concatenation import ConcatenatedComputation

    def simulate():
        computation = ConcatenatedComputation(3, 2)
        physical = computation.physical_input((1, 0, 1))
        computation.apply(MAJ, 0, 1, 2)
        runner = NoisyRunner(NoiseModel(gate_error=1e-3), seed=1)
        result = runner.run_from_input(computation.circuit, physical, 5000)
        decoded = computation.decode_batch(result.states)
        expected = np.asarray(MAJ.apply((1, 0, 1)), dtype=np.uint8)
        return int((decoded == expected).all(axis=1).sum())

    correct = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert correct > 4950
