"""Bench: Figure 6 — interleaving linearly adjacent codewords."""

from repro.harness.experiments import run_experiment


def test_fig6_interleaving(benchmark, record):
    result = benchmark(lambda: run_experiment("fig6"))
    record(result)
