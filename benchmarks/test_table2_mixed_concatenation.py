"""Bench: Table 2 — mixed 2D/1D concatenation thresholds."""

from repro.harness.experiments import run_experiment


def test_table2_mixed_concatenation(benchmark, record):
    result = benchmark(lambda: run_experiment("table2"))
    record(result)
