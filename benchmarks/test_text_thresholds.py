"""Bench: Sections 2.2/3.1/3.2 — all six reported thresholds."""

from repro.harness.experiments import run_experiment


def test_text_thresholds(benchmark, record):
    result = benchmark(lambda: run_experiment("thresholds"))
    record(result)
