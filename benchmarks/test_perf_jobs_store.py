"""Bench gate: a warm result store answers sweeps without simulating.

The jobs-layer acceptance criterion: re-querying a completed 10-point,
100k-trial logical-error sweep through the content-keyed
:class:`~repro.jobs.ResultStore` must be at least 10x faster than
recomputing it (``REPRO_JOBS_SPEEDUP_FLOOR`` overrides the floor for
noisy shared runners — CI pins 5), serve IDENTICAL results, and
simulate ZERO points (asserted via the caching executor's counters,
not inferred from timing).

The workload is the same deep sub-threshold storage sweep as the
runtime batching gate (rare logical failures, the regime that needs
the 100k budget): first computed once through a
:class:`~repro.jobs.CachingExecutor` into a fresh store, then
re-queried.  The warm path's cost is ten file reads plus key hashing —
wall-clock should be milliseconds against the recomputation's seconds,
so the 10x floor is loose by orders of magnitude; it exists to catch a
regression that silently turns hits into recomputation.
"""

from __future__ import annotations

import os
import time

from repro.harness.sweep import geometric_grid, spawn_seeds
from repro.harness.threshold_finder import cycle_error_specs
from repro.jobs import CachingExecutor, ResultStore
from repro.runtime import ExecutionPolicy, Executor

TRIALS = 100_000
POINTS = 10
CYCLES = 3


def _specs(trials: int = TRIALS):
    grid = geometric_grid(1e-4, 2e-3, POINTS)
    points = tuple(zip(grid, spawn_seeds(17, POINTS)))
    return cycle_error_specs(points, trials, cycles=CYCLES)


def test_warm_store_requery_speedup(tmp_path):
    """Acceptance: >= 10x over recomputation, zero simulated points."""
    floor = float(os.environ.get("REPRO_JOBS_SPEEDUP_FLOOR", "10"))
    policy = ExecutionPolicy(engine="bitplane")
    specs = _specs()

    # Cold pass: compute the sweep once into a fresh store, timed as
    # the recomputation baseline (the executor also warms the compile
    # and processor caches, so the warm pass cannot win on those).
    cold = CachingExecutor(ResultStore(tmp_path / "store"), policy=policy)
    start = time.perf_counter()
    cold_results = cold.run(specs)
    cold_seconds = time.perf_counter() - start
    assert cold.simulated_points == POINTS

    # Warm pass: a fresh caching executor over the same store — every
    # point must come back from disk, bit-identical, simulation-free.
    # Best of three fresh executors, so allocator/page-cache warm-up
    # does not pollute the steady-state read cost (mirrors the other
    # perf gates' best-of-rounds timing).
    warm_seconds = float("inf")
    for _ in range(3):
        warm = CachingExecutor(
            ResultStore(tmp_path / "store"), policy=policy
        )
        start = time.perf_counter()
        warm_results = warm.run(specs)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)

    assert warm_results == cold_results, (
        "stored results must be bit-identical to the computed sweep"
    )
    assert warm.simulated_points == 0, (
        f"warm re-query simulated {warm.simulated_points} points; a "
        f"complete store must serve everything"
    )
    assert warm.cached_points == POINTS
    assert warm.store.stats()["hits"] == POINTS

    speedup = cold_seconds / warm_seconds
    print(
        f"\n{POINTS}-point x {TRIALS}-trial sweep: computed "
        f"{cold_seconds * 1e3:.0f} ms, warm store re-query "
        f"{warm_seconds * 1e3:.0f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= floor, (
        f"warm store re-query only {speedup:.1f}x faster than "
        f"recomputation ({warm_seconds * 1e3:.0f} ms vs "
        f"{cold_seconds * 1e3:.0f} ms), floor {floor}x"
    )


def test_store_serves_identical_results_small(tmp_path):
    """Correctness companion at CI scale: store == executor, point by point."""
    policy = ExecutionPolicy(engine="bitplane")
    specs = _specs(trials=2000)
    direct = Executor(policy).run(specs)
    store = ResultStore(tmp_path / "store")
    assert CachingExecutor(store, policy=policy).run(specs) == direct
    warm = CachingExecutor(store, policy=policy)
    assert warm.run(specs) == direct
    assert warm.simulated_points == 0
