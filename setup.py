"""Setup shim.

The normal install path is ``pip install -e .``; this shim exists so
that ``python setup.py develop`` also works on offline machines whose
setuptools predates the bundled ``bdist_wheel`` (editable PEP-660
installs need the ``wheel`` package there).
"""

from setuptools import setup

setup()
