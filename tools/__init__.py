"""Repository maintenance scripts (``python -m tools.lint`` etc.)."""
