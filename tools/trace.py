"""Render and validate repro.obs trace documents.

Usage over a trace file written via ``REPRO_TRACE=<path>`` (or
``ExecutionPolicy.trace``)::

    python tools/trace.py TRACE.json              # span tree + top spans
    python tools/trace.py TRACE.json --top 20     # wider flat profile
    python tools/trace.py TRACE.json --metrics    # counters/gauges/histograms
    python tools/trace.py TRACE.json --check      # schema validation only

The default render shows the span tree (total and self milliseconds per
span, with its recorded attributes) followed by a flat profile of span
names ranked by aggregated self time — self time being a span's
duration minus its children's, i.e. where the wall clock actually went.
``--check`` validates against the versioned schema shared with
:func:`repro.obs.validate_trace` and prints nothing on success: exit 0
valid, 1 schema problems, 2 unreadable file — the same "2 means the
driver, not the data" convention the other tools use.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import validate_trace


def _self_ns(span: dict) -> int:
    """A span's duration minus its children's — its own work."""
    children = sum(child["duration_ns"] for child in span["children"])
    return max(span["duration_ns"] - children, 0)


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    return f"  [{inner}]"


def _render_span(span: dict, depth: int, lines: list[str]) -> None:
    lines.append(
        f"{span['duration_ns'] / 1e6:>10.3f} {_self_ns(span) / 1e6:>10.3f}  "
        f"{'  ' * depth}{span['name']}{_format_attrs(span['attrs'])}"
    )
    for child in span["children"]:
        _render_span(child, depth + 1, lines)


def _walk(span: dict):
    yield span
    for child in span["children"]:
        yield from _walk(child)


def render_tree(document: dict, top: int) -> str:
    """The span tree plus the flat self-time profile."""
    lines = [f"{'total_ms':>10} {'self_ms':>10}  span"]
    for root in document["spans"]:
        _render_span(root, 0, lines)
    by_name: dict[str, list[int]] = {}
    for root in document["spans"]:
        for span in _walk(root):
            aggregate = by_name.setdefault(span["name"], [0, 0])
            aggregate[0] += _self_ns(span)
            aggregate[1] += 1
    ranked = sorted(by_name.items(), key=lambda item: item[1][0], reverse=True)
    lines.append("")
    lines.append(f"{'self_ms':>10} {'calls':>7}  top spans by self time")
    for name, (self_ns, calls) in ranked[:top]:
        lines.append(f"{self_ns / 1e6:>10.3f} {calls:>7}  {name}")
    return "\n".join(lines)


def render_metrics(document: dict) -> str:
    """The trace's metrics snapshot, one dotted name per line."""
    metrics = document.get("metrics", {})
    lines = []
    for name, value in sorted(metrics.get("counters", {}).items()):
        lines.append(f"counter    {name} = {value}")
    for name, value in sorted(metrics.get("gauges", {}).items()):
        lines.append(f"gauge      {name} = {value}")
    for name, stats in sorted(metrics.get("histograms", {}).items()):
        if stats["count"]:
            lines.append(
                f"histogram  {name}: count={stats['count']} "
                f"mean={stats['mean']:.1f} min={stats['min']} "
                f"max={stats['max']}"
            )
        else:
            lines.append(f"histogram  {name}: count=0")
    return "\n".join(lines) if lines else "no metrics recorded"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/trace.py", description=__doc__.splitlines()[0]
    )
    parser.add_argument("trace", type=Path, help="trace JSON file to read")
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows in the flat self-time profile (default 10)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="dump the embedded metrics snapshot instead of the span tree",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the document schema and print nothing on success",
    )
    arguments = parser.parse_args(argv)
    try:
        document = json.loads(arguments.trace.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {arguments.trace}: {exc}",
              file=sys.stderr)
        return 2
    problems = validate_trace(document)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    if arguments.check:
        return 0
    if arguments.metrics:
        print(render_metrics(document))
        return 0
    print(render_tree(document, arguments.top))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # piped into head; not an error
        sys.exit(0)
