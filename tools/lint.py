#!/usr/bin/env python
"""The unified lint driver: ``python -m tools.lint``.

Runs every codebase lint pass of :mod:`repro.verify.codelint` (RNG
purity, key-function determinism, import layering, error discipline,
deprecation audit) over the repository and reports structured
diagnostics.  Exit-code contract (shared with ``python -m
repro.verify``): 0 clean, 1 when any error-severity diagnostic fired,
2 when the driver itself failed (unknown pass, unparseable tree).

Usage::

    PYTHONPATH=src python -m tools.lint            # whole repo, all passes
    python tools/lint.py --json                    # machine-readable
    python tools/lint.py --select layering         # one pass
    python tools/lint.py --root /path/to/tree      # another checkout
    python tools/lint.py --list-codes              # the code registry
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# Keep the script runnable both as ``python -m tools.lint`` (CI sets
# PYTHONPATH=src) and as a bare ``python tools/lint.py``.
if str(REPO_ROOT / "src") not in sys.path:  # pragma: no cover - path setup
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import VerificationError  # noqa: E402
from repro.verify.codelint import PASSES, run_codebase_lints  # noqa: E402
from repro.verify.diagnostics import (  # noqa: E402
    CODES,
    EXIT_DRIVER_ERROR,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="Unified codebase lints (RL### diagnostics).",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="repository root to lint (default: this checkout)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="PASS",
        help=f"run only the named pass(es); known: {', '.join(PASSES)}",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print the registered diagnostic codes and exit",
    )
    arguments = parser.parse_args(argv)

    if arguments.list_codes:
        for code in sorted(CODES):
            print(f"{code}  {CODES[code]}")
        return 0

    try:
        report = run_codebase_lints(arguments.root, passes=arguments.select)
    except VerificationError as exc:
        print(f"driver error: {exc}", file=sys.stderr)
        return EXIT_DRIVER_ERROR

    if arguments.json:
        print(report.render_json())
    else:
        for diagnostic in report.diagnostics:
            print(diagnostic)
        passes = arguments.select or list(PASSES)
        status = "clean" if report.ok else f"{len(report.errors)} finding(s)"
        print(f"lint [{', '.join(passes)}] over {arguments.root}: {status}")
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
