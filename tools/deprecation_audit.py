"""Fail when repo-internal code calls a deprecated entry point.

The PR 3 API redesign left ``estimate_failure_probability`` and
``logical_error_per_cycle`` behind as deprecation shims over
:mod:`repro.runtime`.  New internal code must use the runtime API;
only the shims' own modules, their re-exporting ``__init__`` files,
and the tests that pin the shims' behaviour may keep referring to the
old names.  CI runs this script; it exits 1 listing every offending
``file:line``.

Usage::

    python tools/deprecation_audit.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Deprecated entry points whose spread this audit freezes.  The PR 5
#: synthesis subsystem promoted the private ``circuit_cache_key``
#: hashing to the public ``Circuit.content_key()`` (one content-hash
#: scheme for the compile cache and the synth identity database); the
#: old name is audited so a second hashing path cannot creep back in.
DEPRECATED = (
    "estimate_failure_probability",
    "logical_error_per_cycle",
    "circuit_cache_key",
)

#: Directories scanned for Python sources.
SCANNED = ("src", "examples", "benchmarks", "tests", "tools")

#: Files allowed to reference the deprecated names: the shim
#: definitions, the package __init__ re-exports kept for backwards
#: compatibility, the tests pinning shim behaviour, and this audit.
ALLOWED = {
    "src/repro/noise/monte_carlo.py",
    "src/repro/noise/__init__.py",
    "src/repro/harness/threshold_finder.py",
    "src/repro/harness/__init__.py",
    "tests/noise/test_monte_carlo.py",
    "tests/harness/test_threshold_finder.py",
    "tests/runtime/test_executor.py",
    "tests/test_deprecation_audit.py",
    "tools/deprecation_audit.py",
}

_PATTERN = re.compile("|".join(re.escape(name) for name in DEPRECATED))


def audit(root: Path = REPO_ROOT) -> list[str]:
    """Every disallowed ``file:line: match`` reference, sorted."""
    offenses: list[str] = []
    for directory in SCANNED:
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            relative = path.relative_to(root).as_posix()
            if relative in ALLOWED:
                continue
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                match = _PATTERN.search(line)
                if match:
                    offenses.append(f"{relative}:{number}: {match.group(0)}")
    return offenses


def main() -> int:
    offenses = audit()
    if offenses:
        print(
            "deprecated entry points referenced outside the shims and "
            "their tests (use repro.runtime / measure_cycle_errors):"
        )
        for offense in offenses:
            print(f"  {offense}")
        return 1
    print(
        f"deprecation audit clean: no internal callers of {DEPRECATED} "
        f"outside {len(ALLOWED)} allowed files"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
