"""Back-compat shim: the deprecation audit now lives in the lint driver.

The audit itself moved to :mod:`repro.verify.codelint.deprecation` as
the ``RL400`` pass of ``python -m tools.lint``, which CI now runs.
This entry point keeps the original CLI (and the ``audit(root)``
helper) alive for scripts and muscle memory; it delegates to the lint
pass and preserves the historical output format and exit codes.

Usage::

    python tools/deprecation_audit.py      # prefer: python -m tools.lint
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

if str(REPO_ROOT / "src") not in sys.path:  # pragma: no cover - path setup
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.verify.codelint import deprecation as _pass  # noqa: E402
from repro.verify.codelint.config import (  # noqa: E402
    DEPRECATED_NAMES as DEPRECATED,
    DEPRECATION_ALLOWED as ALLOWED,
    DEPRECATION_SCANNED as SCANNED,
)

__all__ = ["ALLOWED", "DEPRECATED", "SCANNED", "audit", "main"]


def audit(root: Path = REPO_ROOT) -> list[str]:
    """Every disallowed ``file:line: match`` reference, sorted."""
    return _pass.audit(root)


def main() -> int:
    offenses = audit()
    if offenses:
        print(
            "deprecated entry points referenced outside the shims and "
            "their tests (use repro.runtime / measure_cycle_errors):"
        )
        for offense in offenses:
            print(f"  {offense}")
        return 1
    print(
        f"deprecation audit clean: no internal callers of {DEPRECATED} "
        f"outside {len(ALLOWED)} allowed files"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
