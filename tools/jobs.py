"""Command-line front end for the repro.jobs sweep service.

Three subcommands over a job directory::

    python tools/jobs.py submit  JOB_DIR [sweep options]   # create + run
    python tools/jobs.py status  JOB_DIR [--verbose]       # progress
    python tools/jobs.py collect JOB_DIR [--check-serial]  # merged table

``status --verbose`` adds a per-shard table (points, elapsed seconds,
simulated vs store-served split, read from each checkpoint's optional
stats block) and the job's overall store hit ratio; the exit contract
(0 complete, 3 pending) is unchanged.  ``submit --verbose`` prints a
per-shard heartbeat to stderr as shards finish.

``submit`` builds a Figure-2-style cycle-error sweep — a geometric
grid of gate-error points (:func:`repro.harness.sweep.geometric_grid`)
with per-point seeds spawned from one master seed
(:func:`repro.harness.sweep.spawn_seeds`), turned into specs by
:func:`repro.harness.threshold_finder.cycle_error_specs` — then
submits it as a sharded job and runs it.  Submit is idempotent:
re-running the same command against the same directory resumes,
serving finished shards from their checkpoints and finished points
from the result store.  ``--max-shards`` deliberately stops early
(how the CI smoke test simulates a crash); a later submit or a bare
``submit`` with the same arguments finishes the job.

``collect --check-serial`` re-runs the whole sweep through a plain
in-process :meth:`~repro.runtime.Executor.run` and fails unless the
merged shard results are bit-identical — the job layer's core
guarantee, checkable from the shell.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ReproError
from repro.harness.stats import RateEstimate
from repro.harness.sweep import geometric_grid, spawn_seeds
from repro.harness.threshold_finder import cycle_error_specs, per_cycle_rate
from repro.jobs import DEFAULT_SHARD_SIZE, SweepJob
from repro.runtime import ExecutionPolicy, Executor


def _build_specs(arguments: argparse.Namespace):
    grid = geometric_grid(arguments.start, arguments.stop, arguments.points)
    seeds = spawn_seeds(arguments.seed, arguments.points)
    return cycle_error_specs(
        tuple(zip(grid, seeds)),
        arguments.trials,
        cycles=arguments.cycles,
    )


def cmd_submit(arguments: argparse.Namespace) -> int:
    specs = _build_specs(arguments)
    policy = ExecutionPolicy.from_env()
    job = SweepJob.submit(
        arguments.job_dir,
        specs,
        policy,
        shard_size=arguments.shard_size,
    )
    print(f"job {job.job_id}: {len(specs)} points in {len(job.shards)} shards")
    if arguments.no_run:
        return 0

    def heartbeat(done, pending_total, shard_id, elapsed_s):
        print(
            f"  shard {shard_id} done ({done}/{pending_total} pending, "
            f"{elapsed_s:.2f}s)",
            file=sys.stderr,
        )

    report = job.run(
        workers=arguments.workers,
        max_shards=arguments.max_shards,
        on_progress=heartbeat if arguments.verbose else None,
    )
    print(
        f"ran {report.shards_run} shards ({report.shards_skipped} already "
        f"done), {report.simulated_points} points simulated, "
        f"{report.cached_points} served from the store"
    )
    if report.interrupted:
        print("stopped at --max-shards; resubmit to finish")
    return 0


def cmd_status(arguments: argparse.Namespace) -> int:
    job = SweepJob.load(arguments.job_dir)
    status = job.status()
    print(status)
    if arguments.verbose:
        simulated = 0
        cached = 0
        print(f"{'shard':>16} {'points':>7} {'state':>8} {'elapsed':>9} {'sim':>5} {'hit':>5}")
        for row in job.shard_stats():
            state = "done" if row["done"] else "pending"
            elapsed = (
                f"{row['elapsed_s']:.2f}s"
                if row["elapsed_s"] is not None
                else "-"
            )
            sim = "-" if row["simulated"] is None else str(row["simulated"])
            hit = "-" if row["cached"] is None else str(row["cached"])
            print(
                f"{row['shard_id']:>16} {row['points']:>7} {state:>8} "
                f"{elapsed:>9} {sim:>5} {hit:>5}"
            )
            simulated += row["simulated"] or 0
            cached += row["cached"] or 0
        total = simulated + cached
        if total:
            print(
                f"store hit ratio: {cached}/{total} "
                f"({100.0 * cached / total:.1f}%)"
            )
    return 0 if status.complete else 3


def cmd_collect(arguments: argparse.Namespace) -> int:
    job = SweepJob.load(arguments.job_dir)
    results = job.collect()
    print(
        f"{'gate_error':>12} {'failures':>9} {'trials':>8} "
        f"{'per_cycle':>11} {'wilson_low':>11} {'wilson_high':>11}"
    )
    for spec, result in zip(job.specs, results):
        estimate = RateEstimate(
            failures=result.failures, trials=result.trials
        )
        low, high = estimate.interval
        cycle_rate = per_cycle_rate(
            result.failures, result.trials, arguments.cycles
        )
        print(
            f"{spec.noise.gate_error:>12.6g} {result.failures:>9} "
            f"{result.trials:>8} {cycle_rate:>11.4g} {low:>11.4g} "
            f"{high:>11.4g}"
        )
    if arguments.check_serial:
        serial = Executor(job.policy).run(job.specs)
        if serial != results:
            mismatches = [
                index
                for index, (a, b) in enumerate(zip(serial, results))
                if a != b
            ]
            print(
                f"MISMATCH: merged shard results differ from a serial "
                f"Executor.run at point indices {mismatches}",
                file=sys.stderr,
            )
            return 4
        print("check-serial: merged results bit-identical to serial run")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tools/jobs.py", description=__doc__.splitlines()[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="create (or resume) a sharded cycle-error sweep"
    )
    submit.add_argument("job_dir", type=Path)
    submit.add_argument("--points", type=int, default=10)
    submit.add_argument("--start", type=float, default=1e-3)
    submit.add_argument("--stop", type=float, default=2e-2)
    submit.add_argument("--trials", type=int, default=10_000)
    submit.add_argument("--cycles", type=int, default=1)
    submit.add_argument(
        "--seed",
        type=int,
        default=2005,
        help="master seed; per-point seeds are spawned from it",
    )
    submit.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE)
    submit.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width (default: the policy's REPRO_PARALLEL)",
    )
    submit.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="stop after this many pending shards (interrupt simulation)",
    )
    submit.add_argument(
        "--no-run", action="store_true", help="plan and write the manifest only"
    )
    submit.add_argument(
        "--verbose",
        action="store_true",
        help="print a per-shard heartbeat to stderr while running",
    )
    submit.set_defaults(func=cmd_submit)

    status = commands.add_parser("status", help="print job progress")
    status.add_argument("job_dir", type=Path)
    status.add_argument(
        "--verbose",
        action="store_true",
        help="per-shard table (elapsed, simulated/cached split) plus the "
        "store hit ratio",
    )
    status.set_defaults(func=cmd_status)

    collect = commands.add_parser(
        "collect", help="merge shard results into the sweep table"
    )
    collect.add_argument("job_dir", type=Path)
    collect.add_argument(
        "--cycles",
        type=int,
        default=1,
        help="cycle count used at submit time (for the per-cycle column)",
    )
    collect.add_argument(
        "--check-serial",
        action="store_true",
        help="re-run the sweep in-process and require bit-identity",
    )
    collect.set_defaults(func=cmd_collect)
    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    try:
        return arguments.func(arguments)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
